#include "htm/engine.hpp"

#include <algorithm>
#include <vector>

#include "common/checked.hpp"
#include "common/defs.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "nvm/device.hpp"
#include "obs/metrics.hpp"

namespace bdhtm::htm {
namespace {

// ---- Versioned stripe-lock table (TL2) ----
//
// Stripes are keyed by cache line so sub-word accesses to one line
// conflict, matching real HTM's line-granular conflict detection.
// Encoding: bit 0 = locked, bits 63..1 = version (shifted left by one).

constexpr std::size_t kStripeBits = 18;
constexpr std::size_t kStripeCount = std::size_t{1} << kStripeBits;

std::atomic<std::uint64_t> g_stripes[kStripeCount];
std::atomic<std::uint64_t> g_clock{0};

EngineConfig g_cfg;

inline std::atomic<std::uint64_t>& stripe_of(std::uintptr_t word_addr) {
  const std::uint64_t line = word_addr >> 6;
  return g_stripes[splitmix64(line) & (kStripeCount - 1)];
}

constexpr bool is_locked(std::uint64_t v) { return (v & 1) != 0; }
constexpr std::uint64_t version_of(std::uint64_t v) { return v >> 1; }
constexpr std::uint64_t make_version(std::uint64_t ver) { return ver << 1; }

// ---- Abort-cause taxonomy (obs registry) ----
//
// One per-thread-sharded counter per cause; recording is a relaxed
// fetch_add on a line only the aborting thread writes, the same cost as
// the padded TxStats array this replaces. Routing the taxonomy through
// the registry is what lets the bench exporter and tests enumerate it by
// name alongside every other subsystem's metrics.
struct HtmCounters {
  obs::Counter& commits;
  obs::Counter& conflict;
  obs::Counter& capacity;
  obs::Counter& explicit_other;
  obs::Counter& lock_subscription;
  obs::Counter& old_see_new;
  obs::Counter& persist;
  obs::Counter& memtype;
  obs::Counter& spurious;
  obs::Counter& fallbacks;
  obs::Counter& fallbacks_lockwait;
  obs::Counter& fallbacks_exhausted;
  obs::Counter& fallbacks_wait_timeout;
  // Stripe-level fallback metrics plus the per-policy split of the
  // lock_subscription bucket (htm/fallback.hpp): the bucket above counts
  // both convention codes, these attribute them to the policy that raised
  // them so fig11 can compare global vs. striped from one run's counters.
  obs::Counter& stripes_acquired;
  obs::Counter& lock_subscription_global;
  obs::Counter& lock_subscription_striped;
  obs::Histogram& stripe_wait_ns;
};

HtmCounters& cnt() {
  static HtmCounters c{
      obs::Registry::global().counter("htm.commits"),
      obs::Registry::global().counter("htm.abort.conflict"),
      obs::Registry::global().counter("htm.abort.capacity"),
      obs::Registry::global().counter("htm.abort.explicit"),
      obs::Registry::global().counter("htm.abort.lock_subscription"),
      obs::Registry::global().counter("htm.abort.old_see_new"),
      obs::Registry::global().counter("htm.abort.persist"),
      obs::Registry::global().counter("htm.abort.memtype"),
      obs::Registry::global().counter("htm.abort.spurious"),
      obs::Registry::global().counter("htm.fallback.total"),
      obs::Registry::global().counter("htm.fallback.lock_wait"),
      obs::Registry::global().counter("htm.fallback.retry_exhausted"),
      obs::Registry::global().counter("htm.fallback.wait_timeout"),
      obs::Registry::global().counter("htm.fallback.stripes_acquired"),
      obs::Registry::global().counter("htm.abort.lock_subscription.global"),
      obs::Registry::global().counter("htm.abort.lock_subscription.striped"),
      obs::Registry::global().histogram("htm.fallback.stripe_wait_ns"),
  };
  return c;
}

}  // namespace

namespace detail {

// Per-thread transaction context, reused across transactions to avoid
// allocation on the critical path.
//
// Set lookups are O(1) via generation-stamped open-addressing indexes
// (no per-transaction clearing: tx_begin bumps `gen`, staling every
// slot). Real HTM tracks its sets in L1 for free, so per-access cost
// must not grow with transaction size — a linear write-set scan made
// the emulation charge O(words²) per transaction, which penalized the
// batched envelopes (DESIGN.md §10) for exactly the work real hardware
// amortizes. The read index additionally dedups stripes: re-reading a
// stripe cannot observe a new version without aborting (any conflicting
// commit bumps it past rv), so one validation entry per stripe is
// sound, and it keeps commit-time validation proportional to distinct
// lines, as on hardware.
class TxCtx {
 public:
  bool active = false;
  std::uint64_t rv = 0;  // read version (TL2 snapshot)
  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;
  Rng rng{0x517eful};
  // Simulated MEMTYPE suppression credits: the paper's non-transactional
  // pre-walk mitigated the anomaly for a while, not just one attempt.
  int prewalk_credits = 0;
  int tid = -1;

  struct IdxSlot {
    std::uint64_t gen = 0;
    std::uintptr_t key = 0;
    std::uint32_t idx = 0;
  };
  static constexpr std::size_t kWriteIdxBits = 12;  // >= 2x write cap
  static constexpr std::size_t kReadIdxBits = 15;   // >= 2x read cap
  std::uint64_t gen = 0;
  std::vector<IdxSlot> widx = std::vector<IdxSlot>(1u << kWriteIdxBits);
  std::vector<IdxSlot> ridx = std::vector<IdxSlot>(1u << kReadIdxBits);

  WriteEntry* find_write(std::uintptr_t word_addr) {
    const std::size_t mask = widx.size() - 1;
    std::size_t h = splitmix64(word_addr) & mask;
    while (widx[h].gen == gen) {
      if (widx[h].key == word_addr) return &write_set[widx[h].idx];
      h = (h + 1) & mask;
    }
    return nullptr;
  }

  void index_write(std::uintptr_t word_addr, std::uint32_t i) {
    const std::size_t mask = widx.size() - 1;
    std::size_t h = splitmix64(word_addr) & mask;
    while (widx[h].gen == gen) h = (h + 1) & mask;
    widx[h] = {gen, word_addr, i};
  }

  /// True if the stripe was newly recorded (not yet in the read set).
  bool index_read(std::atomic<std::uint64_t>* stripe) {
    const auto key = reinterpret_cast<std::uintptr_t>(stripe);
    const std::size_t mask = ridx.size() - 1;
    std::size_t h = splitmix64(key) & mask;
    while (ridx[h].gen == gen) {
      if (ridx[h].key == key) return false;
      h = (h + 1) & mask;
    }
    ridx[h] = {gen, key, 0};
    return true;
  }
};

TxCtx& ctx() {
  thread_local TxCtx c;
  if (c.tid < 0) {
    c.tid = thread_id();
    c.rng.reseed(splitmix64(g_cfg.seed + static_cast<std::uint64_t>(c.tid)));
  }
  return c;
}

namespace {
[[noreturn]] void abort_with(TxCtx& c, unsigned status) {
  (void)c;
  throw AbortException{status};
}
}  // namespace

unsigned tx_begin(TxCtx& c) {
  assert(!c.active && "nested transactions are not supported (TSX flattens;"
                      " bdhtm structures never nest)");
  // Injected aborts model TSX's transient failures; they fire before any
  // work, as most real transient aborts do.
  if (g_cfg.memtype_abort_prob > 0.0) {
    if (c.prewalk_credits > 0) {
      --c.prewalk_credits;  // pre-walked recently: anomaly suppressed
    } else if (c.rng.next_double() < g_cfg.memtype_abort_prob) {
      cnt().memtype.add_at(c.tid);
      return kAbortMemtype | kAbortRetry;
    }
  }
  if (g_cfg.spurious_abort_prob > 0.0 &&
      c.rng.next_double() < g_cfg.spurious_abort_prob) {
    cnt().spurious.add_at(c.tid);
    return kAbortSpurious | kAbortRetry;
  }
  c.active = true;
  c.rv = g_clock.load(std::memory_order_acquire);
  c.read_set.clear();
  c.write_set.clear();
  ++c.gen;  // stale every index slot; no table clearing on the hot path
  return 0;
}

void tx_cleanup(TxCtx& c) {
  c.active = false;
  c.read_set.clear();
  c.write_set.clear();
}

std::uint64_t tx_load_word(TxCtx& c, std::uintptr_t word_addr) {
  assert(c.active);
  if (WriteEntry* w = c.find_write(word_addr)) return w->value;

  auto& stripe = stripe_of(word_addr);
  const std::uint64_t v1 = stripe.load(std::memory_order_acquire);
  if (is_locked(v1) || version_of(v1) > c.rv) {
    abort_with(c, kAbortConflict | kAbortRetry);
  }
  const std::uint64_t val =
      __atomic_load_n(reinterpret_cast<const std::uint64_t*>(word_addr),
                      __ATOMIC_ACQUIRE);
  const std::uint64_t v2 = stripe.load(std::memory_order_acquire);
  if (v2 != v1) {
    abort_with(c, kAbortConflict | kAbortRetry);
  }
  if (c.index_read(&stripe)) {
    c.read_set.push_back({&stripe, v1});
    // Distinct-stripe capacity (the Bloom-summarized read set of real
    // parts also counts lines, not accesses). The index bound keeps the
    // open-addressing probe terminating under any configured cap.
    if (c.read_set.size() > g_cfg.read_cap_entries ||
        c.read_set.size() > c.ridx.size() / 2) {
      abort_with(c, kAbortCapacity);
    }
  }
  return val;
}

void tx_store_word(TxCtx& c, std::uintptr_t word_addr, std::uint64_t value,
                   nvm::Device* dev) {
  assert(c.active);
  if (WriteEntry* w = c.find_write(word_addr)) {
    w->value = value;
    if (dev != nullptr) w->dev = dev;
    return;
  }
  c.write_set.push_back({word_addr, value, dev});
  c.index_write(word_addr,
                static_cast<std::uint32_t>(c.write_set.size() - 1));
  // Approximate line-count capacity with entry count; HTM-sized
  // transactions touch nearly distinct lines anyway. The index bound
  // keeps the open-addressing probe terminating under any configured cap.
  if (c.write_set.size() > g_cfg.write_cap_lines ||
      c.write_set.size() > c.widx.size() / 2) {
    abort_with(c, kAbortCapacity);
  }
}

unsigned tx_commit(TxCtx& c) {
  assert(c.active);
  if (c.write_set.empty()) {
    // Read-only transactions were validated at each load (TL2 invariant:
    // all reads consistent at rv); nothing to publish.
    tx_cleanup(c);
    cnt().commits.add_at(c.tid);
    return kCommitted;
  }

  // Acquire stripe locks for the write set. Stripes may repeat (two words
  // in one line); lock each distinct stripe once, in address order to
  // avoid livelock between symmetric committers.
  thread_local std::vector<std::atomic<std::uint64_t>*> locked;
  thread_local std::vector<std::atomic<std::uint64_t>*> to_lock;
  locked.clear();
  to_lock.clear();
  for (const auto& w : c.write_set) to_lock.push_back(&stripe_of(w.word_addr));
  std::sort(to_lock.begin(), to_lock.end());
  to_lock.erase(std::unique(to_lock.begin(), to_lock.end()), to_lock.end());

  auto release_all = [&](bool restore) {
    for (auto* s : locked) {
      if (restore) {
        // Unlock without changing the version.
        s->fetch_and(~std::uint64_t{1}, std::memory_order_release);
      }
    }
    locked.clear();
  };

  for (auto* s : to_lock) {
    std::uint64_t cur = s->load(std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      if (!is_locked(cur) &&
          s->compare_exchange_weak(cur, cur | 1, std::memory_order_acquire)) {
        locked.push_back(s);
        break;
      }
      if (++spins > 64) {
        release_all(true);
        tx_cleanup(c);
        cnt().conflict.add_at(c.tid);
        return kAbortConflict | kAbortRetry;
      }
      cur = s->load(std::memory_order_relaxed);
    }
  }

  const std::uint64_t wv = g_clock.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Validate the read set: every stripe must still hold the version we
  // read, unless we hold its lock ourselves (version bits still compared).
  for (const auto& r : c.read_set) {
    const std::uint64_t cur = r.stripe->load(std::memory_order_acquire);
    const bool self_locked =
        is_locked(cur) && std::binary_search(to_lock.begin(), to_lock.end(),
                                             r.stripe);
    if ((is_locked(cur) && !self_locked) ||
        version_of(cur) != version_of(r.version)) {
      release_all(true);
      tx_cleanup(c);
      cnt().conflict.add_at(c.tid);
      return kAbortConflict | kAbortRetry;
    }
  }

  // Publish the redo log, then release stripes at the new version.
  for (const auto& w : c.write_set) {
    __atomic_store_n(reinterpret_cast<std::uint64_t*>(w.word_addr), w.value,
                     __ATOMIC_RELEASE);
    if (w.dev != nullptr) {
      w.dev->mark_dirty(reinterpret_cast<void*>(w.word_addr), 8);
      // This word just became durable content. If it points into a
      // still-virgin pNew block, endOp judges it (pTrack should run
      // between commit and endOp — Listing 1); if it points into the
      // stack, it traps immediately.
      if (checked::enabled()) {
        checked::pb_publish_value(w.value, "htm::Txn::store_nvm (commit)");
      }
    }
  }
  for (auto* s : locked) {
    s->store(make_version(wv), std::memory_order_release);
  }
  locked.clear();
  tx_cleanup(c);
  cnt().commits.add_at(c.tid);
  return kCommitted;
}

std::uint64_t nontx_load_word(std::uintptr_t word_addr) {
  auto& stripe = stripe_of(word_addr);
  for (;;) {
    const std::uint64_t v1 = stripe.load(std::memory_order_acquire);
    const std::uint64_t val =
        __atomic_load_n(reinterpret_cast<const std::uint64_t*>(word_addr),
                        __ATOMIC_ACQUIRE);
    const std::uint64_t v2 = stripe.load(std::memory_order_acquire);
    if (v1 == v2 && !is_locked(v1)) return val;
  }
}

void nontx_store_word(std::uintptr_t word_addr, std::uint64_t value) {
  auto& stripe = stripe_of(word_addr);
  // Lock the stripe, publish, release at a fresh version so transactions
  // that read the line fail validation — the coherence-induced abort.
  std::uint64_t cur = stripe.load(std::memory_order_relaxed);
  for (;;) {
    if (!is_locked(cur) && stripe.compare_exchange_weak(
                               cur, cur | 1, std::memory_order_acquire)) {
      break;
    }
    cur = stripe.load(std::memory_order_relaxed);
  }
  __atomic_store_n(reinterpret_cast<std::uint64_t*>(word_addr), value,
                   __ATOMIC_RELEASE);
  const std::uint64_t wv = g_clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  stripe.store(make_version(wv), std::memory_order_release);
}

bool nontx_cas_word(std::uintptr_t word_addr, std::uint64_t expected,
                    std::uint64_t desired) {
  auto& stripe = stripe_of(word_addr);
  std::uint64_t cur = stripe.load(std::memory_order_relaxed);
  for (;;) {
    if (!is_locked(cur) && stripe.compare_exchange_weak(
                               cur, cur | 1, std::memory_order_acquire)) {
      break;
    }
    cur = stripe.load(std::memory_order_relaxed);
  }
  const std::uint64_t observed =
      __atomic_load_n(reinterpret_cast<const std::uint64_t*>(word_addr),
                      __ATOMIC_ACQUIRE);
  bool ok = observed == expected;
  if (ok) {
    __atomic_store_n(reinterpret_cast<std::uint64_t*>(word_addr), desired,
                     __ATOMIC_RELEASE);
    const std::uint64_t wv =
        g_clock.fetch_add(1, std::memory_order_acq_rel) + 1;
    stripe.store(make_version(wv), std::memory_order_release);
  } else {
    stripe.fetch_and(~std::uint64_t{1}, std::memory_order_release);
  }
  return ok;
}

std::size_t txn_tracked_access_count() {
  TxCtx& c = ctx();
  return c.active ? c.read_set.size() + c.write_set.size() : 0;
}

void note_abort(TxCtx& c, unsigned status) {
  HtmCounters& m = cnt();
  if (status & kAbortPersist) {
    m.persist.add_at(c.tid);
  } else if (status & kAbortExplicit) {
    // The taxonomy splits the two well-known convention codes out of the
    // generic explicit bucket: contention (lock subscription) and
    // epoch-ordering restarts (OldSeeNewException) mean different things
    // to a tuner even though TSX reports both as _xabort.
    const std::uint8_t code = explicit_code(status);
    if (code == kLockSubscriptionCode) {
      m.lock_subscription.add_at(c.tid);
      m.lock_subscription_global.add_at(c.tid);
    } else if (code == kStripedLockSubscriptionCode) {
      m.lock_subscription.add_at(c.tid);
      m.lock_subscription_striped.add_at(c.tid);
    } else if (code == kOldSeeNewCode) {
      m.old_see_new.add_at(c.tid);
    } else {
      m.explicit_other.add_at(c.tid);
    }
  } else if (status & kAbortCapacity) {
    m.capacity.add_at(c.tid);
  } else if (status & kAbortConflict) {
    m.conflict.add_at(c.tid);
  } else if (status & kAbortMemtype) {
    m.memtype.add_at(c.tid);
  } else {
    m.spurious.add_at(c.tid);
  }
}

}  // namespace detail

void configure(const EngineConfig& cfg) { g_cfg = cfg; }
const EngineConfig& config() { return g_cfg; }

TxStats collect_stats() {
  HtmCounters& m = cnt();
  TxStats out;
  out.commits = m.commits.total();
  out.aborts_conflict = m.conflict.total();
  out.aborts_capacity = m.capacity.total();
  out.aborts_explicit = m.explicit_other.total();
  out.aborts_lock_subscription = m.lock_subscription.total();
  out.aborts_old_see_new = m.old_see_new.total();
  out.aborts_persist = m.persist.total();
  out.aborts_memtype = m.memtype.total();
  out.aborts_spurious = m.spurious.total();
  out.fallback_acquisitions = m.fallbacks.total();
  out.fallbacks_lockwait = m.fallbacks_lockwait.total();
  out.fallbacks_exhausted = m.fallbacks_exhausted.total();
  out.fallbacks_wait_timeout = m.fallbacks_wait_timeout.total();
  out.fallback_stripes_acquired = m.stripes_acquired.total();
  return out;
}

void reset_stats() {
  HtmCounters& m = cnt();
  m.commits.reset();
  m.conflict.reset();
  m.capacity.reset();
  m.explicit_other.reset();
  m.lock_subscription.reset();
  m.old_see_new.reset();
  m.persist.reset();
  m.memtype.reset();
  m.spurious.reset();
  m.fallbacks.reset();
  m.fallbacks_lockwait.reset();
  m.fallbacks_exhausted.reset();
  m.fallbacks_wait_timeout.reset();
  m.stripes_acquired.reset();
  m.lock_subscription_global.reset();
  m.lock_subscription_striped.reset();
  m.stripe_wait_ns.reset();
}

void note_fallback() { cnt().fallbacks.add(); }
void note_fallback_lockwait() { cnt().fallbacks_lockwait.add(); }
void note_fallback_exhausted() { cnt().fallbacks_exhausted.add(); }
void note_fallback_wait_timeout() { cnt().fallbacks_wait_timeout.add(); }

void note_fallback_stripes(int n, std::uint64_t wait_ns) {
  HtmCounters& m = cnt();
  m.stripes_acquired.add(static_cast<std::uint64_t>(n));
  m.stripe_wait_ns.record(wait_ns);
}

bool in_txn() { return detail::ctx().active; }

namespace {
// Hand obs the "inside a transaction?" predicate for its BDHTM_CHECKED
// no-obs-in-tx mirror (obs cannot include htm; the dependency points the
// other way). A function-pointer store is safe at static-init time.
[[maybe_unused]] const bool g_obs_probe_installed = [] {
  obs::detail::set_in_tx_probe(&in_txn);
  return true;
}();
}  // namespace

void abort_current(unsigned status_bits) {
  detail::TxCtx& c = detail::ctx();
  assert(c.active);
  (void)c;
  throw detail::AbortException{status_bits};
}

void prewalk_hint() { detail::ctx().prewalk_credits = 16; }

}  // namespace bdhtm::htm
