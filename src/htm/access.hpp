// Memory-access abstraction so a data structure's algorithm is written
// once and runs both inside a hardware transaction (TxAccess) and on the
// global-lock fallback path (NontxAccess) — the standard best-effort HTM
// structure (paper Listing 1: the fallback "path similar to lines 20-36").
//
// Both access modes go through the engine's stripe table, so fallback
// writes conflict with — and abort — concurrent transactions.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/checked.hpp"
#include "htm/engine.hpp"
#include "nvm/device.hpp"

namespace bdhtm::htm {

/// Thrown by NontxAccess::fail(): the fallback path cannot _xabort, so
/// algorithmic restarts (e.g. OldSeeNewException) unwind with this.
struct FallbackRestart {
  std::uint8_t code;
};

struct TxAccess {
  Txn& tx;

  template <typename T>
  T load(const T* p) {
    return tx.load(p);
  }
  template <typename T>
  void store(T* p, T v) {
    tx.store(p, v);
  }
  template <typename T>
  void store_nvm(nvm::Device& dev, T* p, T v) {
    tx.store_nvm(dev, p, v);
  }
  [[noreturn]] void fail(std::uint8_t code) { tx.abort(code); }
  static constexpr bool transactional() { return true; }
};

struct NontxAccess {
  template <typename T>
  T load(const T* p) {
    return nontx_load(p);
  }
  template <typename T>
  void store(T* p, T v) {
    nontx_store(p, v);
  }
  template <typename T>
  void store_nvm(nvm::Device& dev, T* p, T v) {
    nontx_store(p, v);
    dev.mark_dirty(p, sizeof(T));
    // Fallback-path durable store: same publish scan as the HTM commit
    // write-back, for pointer-sized values.
    if constexpr (sizeof(T) == sizeof(std::uint64_t)) {
      if (checked::enabled()) {
        std::uint64_t word;
        std::memcpy(&word, &v, sizeof(word));
        checked::pb_publish_value(word, "htm::NontxAccess::store_nvm");
      }
    }
  }
  [[noreturn]] void fail(std::uint8_t code) { throw FallbackRestart{code}; }
  static constexpr bool transactional() { return false; }
};

}  // namespace bdhtm::htm
