// Pluggable fallback policies for lock elision (DESIGN.md §11).
//
// The paper's §2.2 fallback is one global ElidedLock per structure: every
// fast path subscribes to the single lock word, so one retry-exhausted
// transaction's fallback aborts ALL concurrent transactions and
// serializes the shard. A FallbackPolicy generalizes the protocol to an
// array of elided lock words ("stripes"):
//
//   - the fast path transactionally subscribes only to the stripes
//     covering its footprint (one bit per stripe in a StripeMask), and
//   - the fallback acquires exactly those stripes, always in ascending
//     stripe-index order (the canonical order; since every holder sorts
//     the same way, no cycle of waiters can form — deadlock freedom by
//     construction, the same argument as the engine's commit-time
//     address-ordered stripe locking).
//
// A policy with a single stripe IS the classic global protocol: every
// footprint maps to the one lock word, subscribe/acquire degenerate to
// ElidedLock::subscribe/acquire, and the counters match bit for bit.
// That makes stripes=1 the safe default and the striped policies a pure
// opt-in (svc::ShardOptions::fallback_stripes).
//
// Footprint rules are the structure's obligation (see DESIGN.md §11 for
// the per-structure arguments): two operations whose data footprints can
// overlap must have overlapping stripe masks, and structural operations
// that rewrite shared state (e.g. BD-Spash directory splits) take all().
//
// BDHTM_CHECKED builds enforce the two protocol obligations at runtime
// (rule "fallback-stripe-order", mirrored statically by txlint):
//   - acquire_stripe(i) while holding any stripe j >= i (out of order);
//   - subscribe() after the transaction already tracked an access (the
//     subscription must cover the footprint BEFORE the footprint is
//     touched, or a fallback holder could slip between access and
//     subscription).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/defs.hpp"
#include "common/threading.hpp"
#include "htm/engine.hpp"

namespace bdhtm::htm {

/// Footprint over a policy's stripes: bit i = stripe i. Policies hold at
/// most 64 stripes so any footprint is one word.
using StripeMask = std::uint64_t;

class FallbackPolicy {
 public:
  static constexpr int kMaxStripes = 64;

  /// `stripes` <= 1 selects the global policy (one lock word — the
  /// classic protocol, behaviour-preserving). Larger values are rounded
  /// down to a power of two and clamped to kMaxStripes so stripe_of_hash
  /// is a mask operation.
  explicit FallbackPolicy(int stripes = 1);

  int stripe_count() const { return count_; }
  bool striped() const { return count_ > 1; }

  /// Explicit-abort code raised by subscriptions, split per policy so the
  /// abort taxonomy attributes contention to the policy that caused it.
  std::uint8_t code() const {
    return striped() ? kStripedLockSubscriptionCode : kLockSubscriptionCode;
  }

  /// Every stripe — the footprint of structural operations.
  StripeMask all() const {
    return count_ >= kMaxStripes ? ~StripeMask{0}
                                 : (StripeMask{1} << count_) - 1;
  }

  /// Stripe of a PRE-MIXED hash (callers mix raw keys/addresses with
  /// splitmix64 first; the policy only masks low bits).
  int stripe_of_hash(std::uint64_t h) const {
    return static_cast<int>(h & static_cast<std::uint64_t>(count_ - 1));
  }
  StripeMask mask_of_hash(std::uint64_t h) const {
    return StripeMask{1} << stripe_of_hash(h);
  }

  /// Transactional subscription to every stripe in `mask`; aborts with
  /// code() if any is held. Must be the transaction's FIRST tracked
  /// access (checked rule fallback-stripe-order).
  void subscribe(Txn& tx, StripeMask mask);

  bool any_locked(StripeMask mask) const;

  /// Spin until every stripe in `mask` has been observed free once
  /// (paper Listing 1 line 43, per stripe).
  void wait_until_free(StripeMask mask) const;

  /// Bounded variant: stop once now_ns() passes `deadline_ns`. Returns
  /// false on timeout (some stripe in `mask` was never observed free) —
  /// elide()'s total-wait deadline then takes the fallback instead of
  /// spinning behind a descheduled holder.
  bool wait_until_free(StripeMask mask, std::uint64_t deadline_ns) const;

  /// Fallback acquisition of every stripe in `mask` in canonical
  /// ascending order. Counts ONE fallback acquisition
  /// (htm.fallback.total) regardless of |mask| — parity with
  /// ElidedLock::acquire — plus htm.fallback.stripes_acquired and the
  /// htm.fallback.stripe_wait_ns histogram.
  void acquire(StripeMask mask);
  void release(StripeMask mask);

  /// Single-stripe entry points (acquire()/release() are loops over
  /// these). Checked builds trap acquisition out of canonical order.
  /// acquire_stripe does NOT count a fallback acquisition; callers
  /// composing custom footprints go through acquire().
  void acquire_stripe(int idx);
  void release_stripe(int idx);

  /// Stripes the calling thread currently holds via the fallback path.
  StripeMask held_by_this_thread() const {
    return held_[thread_id()].value;
  }

 private:
  // One elided lock word per stripe, each on its own cache line: the
  // engine's conflict detection is line-granular, so co-located lock
  // words would make subscribing stripe i conflict with acquiring
  // stripe j — false serialization, exactly what striping exists to kill.
  struct alignas(kCacheLineSize) Slot {
    ElidedLock lock;
  };

  int count_;
  std::unique_ptr<Slot[]> slots_;
  // Per-thread held set, for the canonical-order check and for tests;
  // each thread touches only its own padded slot.
  std::unique_ptr<Padded<StripeMask>[]> held_;
};

/// RAII fallback guard over a stripe footprint (the FallbackGuard of the
/// policy world; Core Guidelines CP.20).
class PolicyGuard {
 public:
  PolicyGuard(FallbackPolicy& p, StripeMask mask) : p_(p), mask_(mask) {
    p_.acquire(mask_);
  }
  ~PolicyGuard() { p_.release(mask_); }
  PolicyGuard(const PolicyGuard&) = delete;
  PolicyGuard& operator=(const PolicyGuard&) = delete;

 private:
  FallbackPolicy& p_;
  StripeMask mask_;
};

}  // namespace bdhtm::htm
