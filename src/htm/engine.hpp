// Software best-effort HTM with Intel TSX semantics (DESIGN.md §2).
//
// The machine this reproduction runs on has no TSX, so transactions are
// emulated with a TL2-style software engine: a global version clock, a
// table of versioned stripe locks at cache-line granularity, lazy redo
// logging, and commit-time validation. The emulation deliberately keeps
// TSX's *best-effort* contract:
//
//   - conflict aborts   — another thread (transactional or not) touched a
//                         line in the read/write set (kAbortConflict),
//   - capacity aborts   — read/write set exceeds configured L1-like limits
//                         (kAbortCapacity),
//   - explicit aborts   — Txn::abort(code), code returned in bits 31:24
//                         (kAbortExplicit), like _xabort(imm8),
//   - persist aborts    — nvm::Device::clwb() inside a transaction aborts
//                         it (kAbortPersist); this is the HTM/NVM
//                         incompatibility the paper resolves,
//   - spurious aborts   — injected with configurable probability to
//                         exercise fallback paths (kAbortSpurious), and
//   - memtype aborts    — a knob reproducing the ABORTED_MEMTYPE anomaly
//                         of the paper's Fig. 2, suppressed for one
//                         attempt after prewalk_hint() (kAbortMemtype),
//
// so every algorithm needs the same global-lock fallback it needs on real
// hardware. Non-transactional accesses interoperate through the same
// stripe table: nontx_store bumps the stripe version, aborting any
// transaction that read the line, just as cache coherence would.
//
// All transactional data must be accessed through Txn::load/Txn::store
// (word-tracking software TM cannot trap raw loads); this mirrors how an
// STM-instrumented program is written and is a documented limitation of
// the emulation, not of the reproduced algorithms.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/checked.hpp"
#include "common/spin.hpp"

namespace bdhtm::nvm {
class Device;
}

namespace bdhtm::htm {

// ---- Status word (TSX _xbegin layout, plus emulation-specific bits) ----
inline constexpr unsigned kAbortExplicit = 1u << 0;
inline constexpr unsigned kAbortRetry = 1u << 1;
inline constexpr unsigned kAbortConflict = 1u << 2;
inline constexpr unsigned kAbortCapacity = 1u << 3;
inline constexpr unsigned kAbortPersist = 1u << 6;   // clwb inside txn
inline constexpr unsigned kAbortMemtype = 1u << 7;   // simulated anomaly
inline constexpr unsigned kAbortSpurious = 1u << 8;  // injected transient

/// Returned by run() when the transaction committed.
inline constexpr unsigned kCommitted = ~0u;

constexpr unsigned make_explicit_status(std::uint8_t code) {
  return kAbortExplicit | (static_cast<unsigned>(code) << 24);
}
constexpr std::uint8_t explicit_code(unsigned status) {
  return static_cast<std::uint8_t>(status >> 24);
}

// Well-known explicit-abort codes, split out of the generic "explicit"
// bucket by the abort-cause taxonomy (obs registry + TxStats): lock
// subscription found the elided lock held (retry.hpp / epoch_sys.hpp
// kLockedException), and an old-epoch operation saw a newer-epoch block
// (epoch_sys.hpp kOldSeeNewException). Both are convention codes — the
// engine treats them like any _xabort(imm8), the taxonomy just names
// them because the paper's evaluation (Fig. 2) hinges on telling
// contention from algorithmic restarts.
inline constexpr std::uint8_t kLockSubscriptionCode = 0x52;
inline constexpr std::uint8_t kOldSeeNewCode = 0x51;
/// Lock-subscription abort raised by the STRIPED fallback policy
/// (htm/fallback.hpp). Same meaning as kLockSubscriptionCode — a
/// subscribed elided lock word was held — but carrying its own code lets
/// the taxonomy attribute contention per policy (global vs. striped).
inline constexpr std::uint8_t kStripedLockSubscriptionCode = 0x53;

/// True for either of the lock-subscription convention codes; retry loops
/// treat both as "a fallback holder is in the way", not a failed attempt.
constexpr bool is_lock_subscription_code(std::uint8_t code) {
  return code == kLockSubscriptionCode ||
         code == kStripedLockSubscriptionCode;
}

struct EngineConfig {
  // L1-like speculative capacity: 32 KiB of write lines, a larger
  // Bloom-summarized read capacity, per TSX on Skylake-era parts.
  std::size_t write_cap_lines = 512;
  std::size_t read_cap_entries = 8192;
  double spurious_abort_prob = 0.0;
  double memtype_abort_prob = 0.0;
  std::uint64_t seed = 0xabcd;
};

/// Snapshot of the engine's abort-cause taxonomy. Storage is per-thread
/// sharded counters in the global obs::Registry ("htm.*" names);
/// collect_stats() sums the shards into this plain struct.
struct TxStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  /// Explicit aborts with codes other than the two well-known ones below.
  std::uint64_t aborts_explicit = 0;
  /// Lock-subscription aborts (kLockSubscriptionCode): the fallback lock
  /// was held — contention, not a failed attempt.
  std::uint64_t aborts_lock_subscription = 0;
  /// OldSeeNewException (kOldSeeNewCode): epoch-ordering restart.
  std::uint64_t aborts_old_see_new = 0;
  std::uint64_t aborts_persist = 0;
  std::uint64_t aborts_memtype = 0;
  std::uint64_t aborts_spurious = 0;
  std::uint64_t fallback_acquisitions = 0;
  /// elide() fallbacks split by cause: the transaction kept finding the
  /// lock held (contention) vs. it exhausted its retry budget on
  /// conflict/capacity/spurious aborts. note_fallback() alone cannot
  /// tell these apart — only the retry loop knows why it gave up.
  std::uint64_t fallbacks_lockwait = 0;
  std::uint64_t fallbacks_exhausted = 0;
  /// Fallbacks forced by ElideOptions::max_wait_us: the total time spent
  /// waiting for fallback holders crossed the deadline (e.g. a holder
  /// descheduled by the OS mid-critical-section). Distinct from
  /// fallbacks_lockwait, which counts the per-wait count bound.
  std::uint64_t fallbacks_wait_timeout = 0;
  /// Stripe locks taken across all fallback acquisitions (==
  /// fallback_acquisitions under the global policy, whose footprint is
  /// always the single lock word; larger under striped policies).
  std::uint64_t fallback_stripes_acquired = 0;

  std::uint64_t total_aborts() const {
    return aborts_conflict + aborts_capacity + aborts_explicit +
           aborts_lock_subscription + aborts_old_see_new + aborts_persist +
           aborts_memtype + aborts_spurious;
  }
  std::uint64_t attempts() const { return commits + total_aborts(); }
};

/// (Re)configure the global engine. Not thread safe; call while quiesced.
void configure(const EngineConfig& cfg);
const EngineConfig& config();

/// Aggregate per-thread statistics.
TxStats collect_stats();
void reset_stats();
/// Count a global-lock fallback acquisition (called by ElidedLock users).
void note_fallback();
/// Attribute the fallback elide() is about to take to its cause: the
/// lock-wait bound was hit (contention) vs. the retry budget ran out.
void note_fallback_lockwait();
void note_fallback_exhausted();
/// The elide() total-wait deadline (ElideOptions::max_wait_us) expired
/// while waiting on fallback holders (htm.fallback.wait_timeout).
void note_fallback_wait_timeout();
/// Stripe-level fallback accounting (htm/fallback.hpp): `n` stripe locks
/// acquired in one fallback acquisition that took `wait_ns` to complete
/// (htm.fallback.stripes_acquired / htm.fallback.stripe_wait_ns).
void note_fallback_stripes(int n, std::uint64_t wait_ns);

/// True while the calling thread executes inside run().
bool in_txn();

/// Abort the transaction running on this thread with the given status
/// bits. Precondition: in_txn(). Used by nvm::Device::clwb.
[[noreturn]] void abort_current(unsigned status_bits);

/// Arm the one-shot suppression of the simulated MEMTYPE abort; the
/// paper's mitigation performs a non-transactional pre-walk and retries.
void prewalk_hint();

namespace detail {

struct AbortException {
  unsigned status;
};

struct WriteEntry {
  std::uintptr_t word_addr;  // 8-byte aligned
  std::uint64_t value;
  nvm::Device* dev;  // non-null: mark line dirty on commit
};

struct ReadEntry {
  std::atomic<std::uint64_t>* stripe;
  std::uint64_t version;
};

class TxCtx;
TxCtx& ctx();

std::uint64_t tx_load_word(TxCtx& c, std::uintptr_t word_addr);
void tx_store_word(TxCtx& c, std::uintptr_t word_addr, std::uint64_t value,
                   nvm::Device* dev);
unsigned tx_begin(TxCtx& c);  // 0 = started, else injected abort status
unsigned tx_commit(TxCtx& c);  // kCommitted or abort status
void tx_cleanup(TxCtx& c);
void note_abort(TxCtx& c, unsigned status);

std::uint64_t nontx_load_word(std::uintptr_t word_addr);
void nontx_store_word(std::uintptr_t word_addr, std::uint64_t value);
bool nontx_cas_word(std::uintptr_t word_addr, std::uint64_t expected,
                    std::uint64_t desired);

/// Tracked accesses (distinct read stripes + write words) of the calling
/// thread's current transaction; 0 outside a transaction. Checked builds
/// use this to enforce subscribe-before-first-tracked-access
/// (fallback-stripe-order, DESIGN.md §11).
std::size_t txn_tracked_access_count();

}  // namespace detail

/// Handle passed to a transaction body; all transactional memory accesses
/// go through it. Supports trivially copyable types of size 1/2/4/8.
class Txn {
 public:
  template <typename T>
  T load(const T* addr) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t word = a & ~std::uintptr_t{7};
    const std::uint64_t w = detail::tx_load_word(*ctx_, word);
    T out;
    std::memcpy(&out, reinterpret_cast<const char*>(&w) + (a - word),
                sizeof(T));
    return out;
  }

  template <typename T>
  void store(T* addr, T value) {
    store_impl(addr, value, nullptr);
  }

  /// Store to NVM: like store(), but on commit the device is told the
  /// line is dirty so crash simulation sees the speculative write.
  template <typename T>
  void store_nvm(nvm::Device& dev, T* addr, T value) {
    store_impl(addr, value, &dev);
  }

  /// _xabort(code): aborts and returns make_explicit_status(code) from
  /// run().
  [[noreturn]] void abort(std::uint8_t code) {
    throw detail::AbortException{make_explicit_status(code)};
  }

  explicit Txn(detail::TxCtx& c) : ctx_(&c) {}

 private:
  template <typename T>
  void store_impl(T* addr, T value, nvm::Device* dev) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t word = a & ~std::uintptr_t{7};
    std::uint64_t w;
    if constexpr (sizeof(T) == 8) {
      assert(a == word && "8-byte transactional data must be aligned");
      std::memcpy(&w, &value, 8);
    } else {
      w = detail::tx_load_word(*ctx_, word);  // read-modify-write sub-word
      std::memcpy(reinterpret_cast<char*>(&w) + (a - word), &value,
                  sizeof(T));
    }
    detail::tx_store_word(*ctx_, word, w, dev);
  }

  detail::TxCtx* ctx_;
};

/// Execute `body` as one best-effort hardware transaction.
/// Returns kCommitted on success, or a TSX-style abort status. The body
/// may run multiple logical times only if the caller retries; run() itself
/// performs exactly one attempt, like _xbegin.
template <typename Fn>
unsigned run(Fn&& body) {
  detail::TxCtx& c = detail::ctx();
  const unsigned pre = detail::tx_begin(c);
  if (pre != 0) return pre;
  try {
    Txn tx(c);
    body(tx);
    return detail::tx_commit(c);
  } catch (detail::AbortException& e) {
    detail::tx_cleanup(c);
    detail::note_abort(c, e.status);
    return e.status;
  }
}

// ---- Non-transactional interop ----
// Plain code that shares data with transactions must use these: they go
// through the same stripe table, so a nontx_store conflicts with (and
// aborts) transactions that read the line, as cache coherence would on
// real HTM, and a nontx_load never observes a torn speculative state.

template <typename T>
T nontx_load(const T* addr) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t word = a & ~std::uintptr_t{7};
  const std::uint64_t w = detail::nontx_load_word(word);
  T out;
  std::memcpy(&out, reinterpret_cast<const char*>(&w) + (a - word),
              sizeof(T));
  return out;
}

template <typename T>
void nontx_store(T* addr, T value) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t word = a & ~std::uintptr_t{7};
  std::uint64_t w;
  if constexpr (sizeof(T) == 8) {
    assert(a == word && "8-byte transactional data must be aligned");
    std::memcpy(&w, &value, 8);
  } else {
    w = detail::nontx_load_word(word);
    std::memcpy(reinterpret_cast<char*>(&w) + (a - word), &value, sizeof(T));
  }
  detail::nontx_store_word(word, w);
}

/// Global-lock elision helper: the standard best-effort HTM fallback.
/// Transactions subscribe to the lock word (transactional read) and abort
/// if it is held; the fallback path acquires it non-transactionally, which
/// conflicts with — and aborts — all subscribed transactions.
class ElidedLock {
 public:
  /// Transactional subscription; aborts with `code` if the lock is held.
  void subscribe(Txn& tx, std::uint8_t code) {
    if (tx.load(&word_) != 0) tx.abort(code);
  }

  bool locked() const { return nontx_load(&word_) != 0; }

  /// Spin until the lock is free (paper Listing 1 line 43).
  /// Spin until the fallback holder releases, with bounded exponential
  /// backoff: a convoy of waiters hammering the lock word only delays
  /// the holder (whose stores contend the same line).
  void wait_until_free() const {
    Backoff backoff;
    while (locked()) {
      backoff.pause();
    }
  }

  /// Bounded variant: give up once now_ns() passes `deadline_ns`.
  /// Returns true if the lock was observed free, false on timeout —
  /// the caller (elide()'s total-wait deadline) must then stop waiting
  /// and take the fallback itself rather than spin behind a holder the
  /// OS may have descheduled indefinitely.
  bool wait_until_free(std::uint64_t deadline_ns) const {
    Backoff backoff;
    while (locked()) {
      if (now_ns() >= deadline_ns) return false;
      backoff.pause();
    }
    return true;
  }

  void acquire() {
    acquire_raw();
    note_fallback();
  }

  /// Bare acquisition without the fallback-acquisition count: a striped
  /// FallbackPolicy (htm/fallback.hpp) takes several of these per logical
  /// fallback and counts the acquisition once itself.
  void acquire_raw() {
    // Taking the fallback lock inside a transaction is the classic
    // lock-elision deadlock: the acquisition conflicts with every
    // subscribed transaction — including this one. Transactions
    // subscribe(); only the non-transactional fallback path acquires.
    if (checked::enabled() && in_txn()) {
      checked::violation(checked::Rule::kIrrevocableInTx,
                         "htm::ElidedLock::acquire");
    }
    const auto a = reinterpret_cast<std::uintptr_t>(&word_);
    for (;;) {
      if (detail::nontx_cas_word(a, 0, 1)) {
        return;
      }
      while (__atomic_load_n(&word_, __ATOMIC_RELAXED) != 0) {
      }
    }
  }

  void release() {
    detail::nontx_store_word(reinterpret_cast<std::uintptr_t>(&word_), 0);
  }

 private:
  // Accessed only through the stripe-table helpers so that fallback
  // acquisition conflicts with subscribed transactions.
  alignas(8) std::uint64_t word_{0};
};

/// RAII fallback-path guard (Core Guidelines CP.20: never bare
/// lock()/unlock()).
class FallbackGuard {
 public:
  explicit FallbackGuard(ElidedLock& l) : lock_(l) { lock_.acquire(); }
  ~FallbackGuard() { lock_.release(); }
  FallbackGuard(const FallbackGuard&) = delete;
  FallbackGuard& operator=(const FallbackGuard&) = delete;

 private:
  ElidedLock& lock_;
};

}  // namespace bdhtm::htm
