#include "htm/fallback.hpp"

#include "common/checked.hpp"
#include "common/spin.hpp"

namespace bdhtm::htm {

namespace {

int clamp_stripes(int stripes) {
  if (stripes <= 1) return 1;
  const int capped = stripes > FallbackPolicy::kMaxStripes
                         ? FallbackPolicy::kMaxStripes
                         : stripes;
  return 1 << (31 - std::countl_zero(static_cast<unsigned>(capped)));
}

}  // namespace

FallbackPolicy::FallbackPolicy(int stripes)
    : count_(clamp_stripes(stripes)),
      slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(count_))),
      held_(std::make_unique<Padded<StripeMask>[]>(kMaxThreads)) {}

void FallbackPolicy::subscribe(Txn& tx, StripeMask mask) {
  assert(mask != 0 && (mask & ~all()) == 0);
  if (checked::enabled() && detail::txn_tracked_access_count() != 0) {
    // The subscription must precede every tracked access: an access made
    // before subscribing is not protected against a fallback holder that
    // acquired between the access and the (late) subscription.
    checked::violation(checked::Rule::kFallbackStripeOrder,
                       "htm::FallbackPolicy::subscribe");
  }
  for (StripeMask m = mask; m != 0; m &= m - 1) {
    slots_[std::countr_zero(m)].lock.subscribe(tx, code());
  }
}

bool FallbackPolicy::any_locked(StripeMask mask) const {
  for (StripeMask m = mask; m != 0; m &= m - 1) {
    if (slots_[std::countr_zero(m)].lock.locked()) return true;
  }
  return false;
}

void FallbackPolicy::wait_until_free(StripeMask mask) const {
  for (StripeMask m = mask; m != 0; m &= m - 1) {
    slots_[std::countr_zero(m)].lock.wait_until_free();
  }
}

bool FallbackPolicy::wait_until_free(StripeMask mask,
                                     std::uint64_t deadline_ns) const {
  for (StripeMask m = mask; m != 0; m &= m - 1) {
    if (!slots_[std::countr_zero(m)].lock.wait_until_free(deadline_ns)) {
      return false;
    }
  }
  return true;
}

void FallbackPolicy::acquire(StripeMask mask) {
  assert(mask != 0 && (mask & ~all()) == 0);
  const std::uint64_t t0 = now_ns();
  for (StripeMask m = mask; m != 0; m &= m - 1) {
    acquire_stripe(std::countr_zero(m));
  }
  note_fallback();
  note_fallback_stripes(std::popcount(mask), now_ns() - t0);
}

void FallbackPolicy::release(StripeMask mask) {
  for (StripeMask m = mask; m != 0; m &= m - 1) {
    release_stripe(std::countr_zero(m));
  }
}

void FallbackPolicy::acquire_stripe(int idx) {
  assert(idx >= 0 && idx < count_);
  StripeMask& held = held_[thread_id()].value;
  if (checked::enabled() && (held >> idx) != 0) {
    // Holding any stripe >= idx while acquiring idx breaks the canonical
    // ascending order — with another thread doing the same in the
    // opposite order, that is the textbook deadlock cycle.
    checked::violation(checked::Rule::kFallbackStripeOrder,
                       "htm::FallbackPolicy::acquire_stripe");
  }
  slots_[idx].lock.acquire_raw();
  held |= StripeMask{1} << idx;
}

void FallbackPolicy::release_stripe(int idx) {
  assert(idx >= 0 && idx < count_);
  slots_[idx].lock.release();
  held_[thread_id()].value &= ~(StripeMask{1} << idx);
}

}  // namespace bdhtm::htm
