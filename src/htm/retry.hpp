// Standard best-effort HTM retry loop with global-lock fallback
// (paper §2.2): attempt the operation as a transaction subscribed to the
// elided lock; on persistent aborts, acquire the lock and run the same
// body non-transactionally. Bodies are templates over the access mode
// (htm/access.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/rng.hpp"
#include "common/spin.hpp"
#include "common/threading.hpp"
#include "htm/access.hpp"
#include "htm/engine.hpp"
#include "htm/fallback.hpp"

namespace bdhtm::htm {

inline constexpr std::uint8_t kLockedCode = 0x52;

struct ElideOptions {
  int max_retries = 16;
  /// Consecutive lock-subscription aborts tolerated before giving up and
  /// taking the fallback lock ourselves. Lock-waits are free (they don't
  /// charge max_retries — see below), so without a bound a thread stuck
  /// behind a convoy of fallback holders would wait forever; with one, it
  /// eventually joins the lock queue. Generous default: each wait already
  /// blocks until the lock is observed free once.
  int max_lock_waits = 64;
  /// Total-wait deadline across ALL lock-waits in one elide() call, in
  /// microseconds (0 = unbounded). max_lock_waits bounds the COUNT of
  /// waits, but each individual wait is unbounded: a fallback holder
  /// descheduled by the OS mid-critical-section would pin every waiter
  /// on a spin loop for the holder's whole time-slice-out. The deadline
  /// converts that into a (counted) wait_timeout fallback: the waiter
  /// joins the lock queue and the kernel sorts out the rest.
  std::uint64_t max_wait_us = 100'000;
  /// Bounded exponential backoff between attempts after a conflict,
  /// capacity, or spurious abort: the delay doubles from min to max.
  /// Symmetric aborters re-colliding in lockstep is what turns transient
  /// conflicts into fallback-lock serialization.
  std::uint32_t backoff_min_ns = 64;
  std::uint32_t backoff_max_ns = 8192;
  /// Invoked after a simulated MEMTYPE abort, before the retry — the
  /// paper's mitigation performs a non-transactional pre-walk here.
  void (*prewalk)(void*) = nullptr;
  void* prewalk_ctx = nullptr;
};

namespace detail {
/// Per-thread jitter stream for retry backoff (de-synchronizes threads
/// whose transactions keep aborting each other).
inline std::uint32_t retry_jitter(std::uint32_t bound) {
  static thread_local std::uint64_t s =
      splitmix64(0x9e3779b97f4a7c15ULL ^
                 static_cast<std::uint64_t>(thread_id() + 1));
  s = splitmix64(s);
  return static_cast<std::uint32_t>(s % bound);
}
}  // namespace detail

/// Run `body(acc) -> R` atomically. The body may be re-executed; all its
/// side effects must go through the accessor (rolled back on abort) or be
/// reset at the top of the body. The body must not throw anything except
/// via acc.fail() on the fallback path (FallbackRestart propagates to the
/// caller, who owns algorithmic restarts).
template <typename R, typename Body>
R elide(ElidedLock& lock, Body&& body, const ElideOptions& opts = {}) {
  std::uint32_t delay_ns = opts.backoff_min_ns;
  int lock_waits = 0;
  bool last_abort_was_lock = false;
  bool wait_timed_out = false;
  std::uint64_t wait_deadline_ns = 0;  // armed lazily on the first wait
  for (int attempt = 0; attempt < opts.max_retries;) {
    R result{};
    const unsigned st = run([&](Txn& tx) {
      lock.subscribe(tx, kLockedCode);
      TxAccess acc{tx};
      result = body(acc);
    });
    if (st == kCommitted) return result;
    if ((st & kAbortExplicit) && explicit_code(st) == kLockedCode) {
      // Lock-wait, not a failed attempt: no progress was possible while
      // a fallback held the lock, so charging these against max_retries
      // livelocks straight into the very serialization elision exists to
      // avoid — a convoy of waiters all exhausting their budgets at once.
      // A separate (generous) bound keeps a thread from waiting forever
      // behind a steady stream of fallback holders.
      last_abort_was_lock = true;
      if (++lock_waits >= opts.max_lock_waits) break;
      if (opts.max_wait_us == 0) {
        lock.wait_until_free();
      } else {
        // The deadline is TOTAL across every wait in this call: arming
        // it once keeps a stream of short holds from resetting it.
        if (wait_deadline_ns == 0) {
          wait_deadline_ns = now_ns() + opts.max_wait_us * 1000;
        }
        if (!lock.wait_until_free(wait_deadline_ns)) {
          wait_timed_out = true;
          break;
        }
      }
      continue;
    }
    last_abort_was_lock = false;
    lock_waits = 0;
    if (st & kAbortExplicit) {
      // Algorithmic abort (e.g. OldSeeNewException): surface it like the
      // fallback path would, so callers handle one restart mechanism.
      throw FallbackRestart{explicit_code(st)};
    }
    ++attempt;
    if (st & kAbortMemtype) {
      // The pre-walk already spent the mitigation time; retry at once.
      if (opts.prewalk != nullptr) opts.prewalk(opts.prewalk_ctx);
      prewalk_hint();
      continue;
    }
    // Conflict / spurious: bounded exponential backoff with jitter —
    // its only job is de-synchronizing peers that keep aborting each
    // other. A capacity abort is deterministic for a fixed footprint:
    // no amount of waiting shrinks the write set, so retry immediately
    // and reach the fallback (the only cure) sooner instead of paying
    // the full backoff ladder on the way to certain exhaustion.
    if ((st & kAbortCapacity) == 0 && delay_ns > 0) {
      spin_for_ns(delay_ns / 2 + detail::retry_jitter(delay_ns));
      delay_ns = std::min(delay_ns * 2, opts.backoff_max_ns);
    }
  }
  // Attribute the fallback to its cause before taking the lock: a final
  // lock-subscription abort means contention drove us here, even if the
  // retry budget happened to run out on the same pass — only the cause
  // of the LAST abort says why progress ultimately stalled. A timed-out
  // wait is its own cause: the holder stalled, not mere contention.
  if (wait_timed_out) {
    note_fallback_wait_timeout();
  } else if (last_abort_was_lock) {
    note_fallback_lockwait();
  } else {
    note_fallback_exhausted();
  }
  FallbackGuard guard(lock);
  NontxAccess acc;
  return body(acc);
}

/// Policy-aware elision (DESIGN.md §11): identical protocol to the
/// ElidedLock overload, but the transaction subscribes only to the
/// stripes in `mask` and the fallback acquires exactly those stripes in
/// canonical order. With a 1-stripe (global) policy and mask=all() this
/// is behaviourally identical to elide(ElidedLock&, ...). The mask must
/// cover the body's full footprint per the owning structure's rules.
template <typename R, typename Body>
R elide(FallbackPolicy& policy, StripeMask mask, Body&& body,
        const ElideOptions& opts = {}) {
  std::uint32_t delay_ns = opts.backoff_min_ns;
  int lock_waits = 0;
  bool last_abort_was_lock = false;
  bool wait_timed_out = false;
  std::uint64_t wait_deadline_ns = 0;
  for (int attempt = 0; attempt < opts.max_retries;) {
    R result{};
    const unsigned st = run([&](Txn& tx) {
      policy.subscribe(tx, mask);
      TxAccess acc{tx};
      result = body(acc);
    });
    if (st == kCommitted) return result;
    if ((st & kAbortExplicit) &&
        is_lock_subscription_code(explicit_code(st))) {
      last_abort_was_lock = true;
      if (++lock_waits >= opts.max_lock_waits) break;
      if (opts.max_wait_us == 0) {
        policy.wait_until_free(mask);
      } else {
        if (wait_deadline_ns == 0) {
          wait_deadline_ns = now_ns() + opts.max_wait_us * 1000;
        }
        if (!policy.wait_until_free(mask, wait_deadline_ns)) {
          wait_timed_out = true;
          break;
        }
      }
      continue;
    }
    last_abort_was_lock = false;
    lock_waits = 0;
    if (st & kAbortExplicit) {
      throw FallbackRestart{explicit_code(st)};
    }
    ++attempt;
    if (st & kAbortMemtype) {
      if (opts.prewalk != nullptr) opts.prewalk(opts.prewalk_ctx);
      prewalk_hint();
      continue;
    }
    // Capacity aborts retry without backoff (see the ElidedLock
    // overload: backoff cannot shrink a write set).
    if ((st & kAbortCapacity) == 0 && delay_ns > 0) {
      spin_for_ns(delay_ns / 2 + detail::retry_jitter(delay_ns));
      delay_ns = std::min(delay_ns * 2, opts.backoff_max_ns);
    }
  }
  // Attribute by last-abort cause (see the ElidedLock overload).
  if (wait_timed_out) {
    note_fallback_wait_timeout();
  } else if (last_abort_was_lock) {
    note_fallback_lockwait();
  } else {
    note_fallback_exhausted();
  }
  PolicyGuard guard(policy, mask);
  NontxAccess acc;
  return body(acc);
}

}  // namespace bdhtm::htm
