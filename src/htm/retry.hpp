// Standard best-effort HTM retry loop with global-lock fallback
// (paper §2.2): attempt the operation as a transaction subscribed to the
// elided lock; on persistent aborts, acquire the lock and run the same
// body non-transactionally. Bodies are templates over the access mode
// (htm/access.hpp).
#pragma once

#include <cstdint>
#include <utility>

#include "htm/access.hpp"
#include "htm/engine.hpp"

namespace bdhtm::htm {

inline constexpr std::uint8_t kLockedCode = 0x52;

struct ElideOptions {
  int max_retries = 16;
  /// Invoked after a simulated MEMTYPE abort, before the retry — the
  /// paper's mitigation performs a non-transactional pre-walk here.
  void (*prewalk)(void*) = nullptr;
  void* prewalk_ctx = nullptr;
};

/// Run `body(acc) -> R` atomically. The body may be re-executed; all its
/// side effects must go through the accessor (rolled back on abort) or be
/// reset at the top of the body. The body must not throw anything except
/// via acc.fail() on the fallback path (FallbackRestart propagates to the
/// caller, who owns algorithmic restarts).
template <typename R, typename Body>
R elide(ElidedLock& lock, Body&& body, const ElideOptions& opts = {}) {
  for (int attempt = 0; attempt < opts.max_retries; ++attempt) {
    R result{};
    const unsigned st = run([&](Txn& tx) {
      lock.subscribe(tx, kLockedCode);
      TxAccess acc{tx};
      result = body(acc);
    });
    if (st == kCommitted) return result;
    if ((st & kAbortExplicit) && explicit_code(st) == kLockedCode) {
      lock.wait_until_free();
      continue;
    }
    if (st & kAbortExplicit) {
      // Algorithmic abort (e.g. OldSeeNewException): surface it like the
      // fallback path would, so callers handle one restart mechanism.
      throw FallbackRestart{explicit_code(st)};
    }
    if (st & kAbortMemtype) {
      if (opts.prewalk != nullptr) opts.prewalk(opts.prewalk_ctx);
      prewalk_hint();
      continue;
    }
    // conflict / capacity / spurious: plain retry
  }
  FallbackGuard guard(lock);
  NontxAccess acc;
  return body(acc);
}

}  // namespace bdhtm::htm
