// Deterministic fault-plan injection (DESIGN.md §5).
//
// simulate_crash() alone samples crash points coarsely: wherever the test
// happens to call it. A FaultPlan instead arms the device to "lose power"
// at the N-th occurrence of a chosen device-event class, so a test can
// *enumerate* every crash point an op sequence exposes — every clwb, every
// fence, every line reaching the media, and specifically every media write
// of the persisted-epoch counter (the window between the epoch system's
// flush barrier and its counter publish).
//
// Tripping freezes the media image: from that instant no line write-back
// takes effect, exactly as if the machine died mid-instruction. The
// subsequent simulate_crash() then skips the probabilistic eviction
// lottery (an armed plan is a *deterministic* crash — same plan, same op
// sequence, bit-identical media image) and applies the plan's optional
// media corruption before reboot.
//
// The corruption model mirrors real 3D-XPoint failure modes at the
// granularities the simulator models: torn 256 B XPLine writes (a suffix
// of the XPLine is garbage), dropped lines (a write-back that never
// happened: the line reads as zeros), and single bit flips. Corruption
// only targets lines that were ever written to the media — blank heap
// pages cannot "rot" into fake blocks — and by default spares the watched
// persisted-counter line, whose loss is a separate (clean) failure mode
// already covered by kCounterWrite plans.
#pragma once

#include <cstdint>

namespace bdhtm::nvm {

/// Device event classes a FaultPlan can trigger on. Counters for all
/// classes run whether or not a plan is armed, so a profiling run can
/// first measure how many events of each class an op sequence generates
/// and then enumerate trigger points 0..count-1.
enum class FaultEvent : std::uint8_t {
  kClwb = 0,      // clwb / clwb_nontxn retired (including per-line clwbs
                  // charged by the bulk flush paths)
  kFence = 1,     // drain / sfence retired (including the implicit fence
                  // of each bulk flush call)
  kEviction = 2,  // a cache line written back to the media, except lines
                  // inside the fault-watch range
  kCounterWrite = 3,  // a media write overlapping the fault-watch range
                      // (the persisted-epoch counter line): tripping here
                      // crashes between flush barrier and counter publish
  kNumEvents = 4,
};

/// Corruption applied to the media image at crash time (or injected
/// directly via Device::corrupt_media for post-crash sweeps). All targets
/// are drawn deterministically from `seed` over the set of lines that
/// were ever written to the media.
struct MediaCorruption {
  std::uint32_t torn_xplines = 0;  // scramble a random suffix of an XPLine
  std::uint32_t dropped_lines = 0;  // line write-back lost: reads as zeros
  std::uint32_t bit_flips = 0;      // flip one random bit in a line
  std::uint64_t seed = 0xc044;
  /// Keep the fault-watch range (persistent root / epoch counter) intact.
  /// Corrupting it makes the whole heap unrecoverable by design — a
  /// distinct failure mode tests opt into explicitly.
  bool spare_watch_range = true;

  bool any() const {
    return torn_xplines != 0 || dropped_lines != 0 || bit_flips != 0;
  }
};

/// Crash at the `trigger_at`-th (0-based) event of class `event`. The
/// triggering event itself has no media effect: a plan at trigger_at == N
/// models dying just before event N completes, so enumerating N over
/// [0, count] covers "nothing of event N survived" through "everything
/// survived" with no gaps.
struct FaultPlan {
  FaultEvent event = FaultEvent::kClwb;
  std::uint64_t trigger_at = 0;
  /// Corruption applied by the simulate_crash() that follows the trip.
  MediaCorruption crash_corruption{};
};

}  // namespace bdhtm::nvm
