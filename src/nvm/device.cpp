#include "nvm/device.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/spin.hpp"
#include "common/threading.hpp"
#include "htm/engine.hpp"

namespace bdhtm::nvm {
namespace {

std::byte* map_image(std::size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  return static_cast<std::byte*>(p);
}

}  // namespace

Device::Device(const DeviceConfig& cfg) : cfg_(cfg) {
  assert(cfg_.capacity % kCacheLineSize == 0);
  if (cfg_.read_ns | cfg_.write_ns | cfg_.flush_ns | cfg_.fence_ns) {
    spin_calibrate();
  }
  working_ = map_image(cfg_.capacity);
  media_ = map_image(cfg_.capacity);
  n_lines_ = cfg_.capacity / kCacheLineSize;
  line_state_ = std::make_unique<std::atomic<std::uint8_t>[]>(n_lines_);
  pending_ = std::make_unique<Padded<PendingSlot>[]>(kMaxThreads);
}

Device::~Device() {
  ::munmap(working_, cfg_.capacity);
  ::munmap(media_, cfg_.capacity);
}

void Device::charge_read() const {
  if (cfg_.read_ns != 0) spin_for_ns(cfg_.read_ns);
  stats_.loads.fetch_add(1, std::memory_order_relaxed);
}

void Device::charge_write(std::size_t n) {
  if (cfg_.write_ns != 0) spin_for_ns(cfg_.write_ns);
  stats_.stores.fetch_add(1, std::memory_order_relaxed);
  stats_.store_bytes.fetch_add(n, std::memory_order_relaxed);
}

void Device::mark_dirty(const void* addr, std::size_t len) {
  assert(contains(addr) && len > 0);
  const std::size_t first = line_of(offset_of(addr));
  const std::size_t last = line_of(offset_of(addr) + len - 1);
  for (std::size_t l = first; l <= last; ++l) {
    // A pending (clwb'd, unfenced) line that is re-dirtied stays pending:
    // the eventual drain writes back the newer content, as hardware may.
    std::uint8_t expected = kClean;
    line_state_[l].compare_exchange_strong(expected, kDirty,
                                           std::memory_order_release,
                                           std::memory_order_relaxed);
  }
}

void Device::clwb(const void* addr) {
  if (!cfg_.eadr && htm::in_txn()) {
    // TSX: CLWB/CLFLUSH(OPT) inside a transaction aborts it. This single
    // check is the incompatibility the whole paper is about.
    htm::abort_current(htm::kAbortPersist);
  }
  clwb_nontxn(addr);
}

void Device::clwb_nontxn(const void* addr) {
  stats_.clwbs.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.eadr) return;  // persistent cache: already durable
  if (cfg_.flush_ns != 0) spin_for_ns(cfg_.flush_ns);
  const std::size_t line = line_of(offset_of(addr));
  std::uint8_t st = line_state_[line].load(std::memory_order_acquire);
  if (st == kClean) return;  // nothing to write back
  line_state_[line].store(kPending, std::memory_order_release);
  pending_[thread_id()].value.lines.push_back(line);
}

BDHTM_NO_SANITIZE_THREAD
void Device::flush_line_to_media(std::size_t line) {
  std::memcpy(media_ + line * kCacheLineSize,
              working_ + line * kCacheLineSize, kCacheLineSize);
  stats_.media_line_writes.fetch_add(1, std::memory_order_relaxed);
}

void Device::drain() {
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.eadr) return;
  if (cfg_.fence_ns != 0) spin_for_ns(cfg_.fence_ns);
  auto& mine = pending_[thread_id()].value.lines;
  if (mine.empty()) return;
  // XPLine accounting: the media is accessed at 256 B granularity, so
  // adjacent lines flushed in one batch coalesce into one media access.
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;
  std::size_t last_xp = ~std::size_t{0};
  for (const std::size_t line : mine) {
    flush_line_to_media(line);
    const std::size_t xp = line / kLinesPerXP;
    if (xp != last_xp) {
      stats_.media_xpline_writes.fetch_add(1, std::memory_order_relaxed);
      last_xp = xp;
    }
    // Only transition pending -> clean; a concurrent store may have
    // re-dirtied the line after our copy, and that content must not be
    // considered durable.
    std::uint8_t expected = kPending;
    line_state_[line].compare_exchange_strong(expected, kClean,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
  }
  mine.clear();
}

void Device::persist(const void* addr, std::size_t len) {
  assert(len > 0);
  const auto* p = reinterpret_cast<const std::byte*>(addr);
  const std::size_t first = line_of(offset_of(p));
  const std::size_t last = line_of(offset_of(p) + len - 1);
  for (std::size_t l = first; l <= last; ++l) {
    clwb(working_ + l * kCacheLineSize);
  }
  drain();
}

void Device::persist_nontxn(const void* addr, std::size_t len) {
  assert(len > 0);
  const auto* p = reinterpret_cast<const std::byte*>(addr);
  const std::size_t first = line_of(offset_of(p));
  const std::size_t last = line_of(offset_of(p) + len - 1);
  for (std::size_t l = first; l <= last; ++l) {
    clwb_nontxn(working_ + l * kCacheLineSize);
  }
  drain();
}

void Device::flush_range_to_media(const void* addr, std::size_t len) {
  assert(len > 0);
  if (cfg_.eadr) return;
  const std::size_t first = line_of(offset_of(addr));
  const std::size_t last = line_of(offset_of(addr) + len - 1);
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;
  std::size_t last_xp = ~std::size_t{0};
  for (std::size_t l = first; l <= last; ++l) {
    if (cfg_.flush_ns != 0) spin_for_ns(cfg_.flush_ns);
    stats_.clwbs.fetch_add(1, std::memory_order_relaxed);
    flush_line_to_media(l);
    const std::size_t xp = l / kLinesPerXP;
    if (xp != last_xp) {
      stats_.media_xpline_writes.fetch_add(1, std::memory_order_relaxed);
      last_xp = xp;
    }
    // Demote pending/dirty to clean; a racing store re-dirties afterwards
    // and will be covered by its own epoch's flush.
    line_state_[l].store(kClean, std::memory_order_release);
  }
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.fence_ns != 0) spin_for_ns(cfg_.fence_ns);
}

void Device::flush_line_run_to_media(std::size_t first_line, std::size_t n) {
  assert(n > 0 && first_line + n <= n_lines_);
  if (cfg_.eadr) return;
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;
  std::size_t last_xp = ~std::size_t{0};
  for (std::size_t l = first_line; l < first_line + n; ++l) {
    if (cfg_.flush_ns != 0) spin_for_ns(cfg_.flush_ns);
    stats_.clwbs.fetch_add(1, std::memory_order_relaxed);
    flush_line_to_media(l);
    const std::size_t xp = l / kLinesPerXP;
    if (xp != last_xp) {
      stats_.media_xpline_writes.fetch_add(1, std::memory_order_relaxed);
      last_xp = xp;
    }
    // Demote pending/dirty to clean; a racing store re-dirties afterwards
    // and will be covered by its own epoch's flush.
    line_state_[l].store(kClean, std::memory_order_release);
  }
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.fence_ns != 0) spin_for_ns(cfg_.fence_ns);
}

bool Device::line_is_durable(const void* addr) const {
  const std::size_t line = line_of(offset_of(addr));
  if (cfg_.eadr) {
    return true;  // cache is in the persistence domain
  }
  return std::memcmp(working_ + line * kCacheLineSize,
                     media_ + line * kCacheLineSize, kCacheLineSize) == 0;
}

void Device::simulate_crash() {
  // Caller has quiesced workers: no concurrent access below.
  Rng rng(cfg_.crash_seed);
  cfg_.crash_seed = splitmix64(cfg_.crash_seed + 1);  // vary across crashes
  for (std::size_t l = 0; l < n_lines_; ++l) {
    const std::uint8_t st =
        line_state_[l].load(std::memory_order_relaxed);
    if (st == kClean) continue;
    double survive_p = 0.0;
    if (cfg_.eadr) {
      survive_p = 1.0;  // persistent cache: everything written survives
    } else if (st == kPending) {
      survive_p = cfg_.pending_survival;
    } else {
      survive_p = cfg_.dirty_survival;
    }
    if (rng.next_double() < survive_p) {
      flush_line_to_media(l);  // the line happened to reach the media
    }
    line_state_[l].store(kClean, std::memory_order_relaxed);
  }
  // After "reboot" the working image IS the media image — including any
  // lines that were modified without being reported dirty (a structure
  // that forgets mark_dirty loses those writes, as it should).
  std::memcpy(working_, media_, cfg_.capacity);
  for (int t = 0; t < kMaxThreads; ++t) pending_[t].value.lines.clear();
}

}  // namespace bdhtm::nvm
