#include "nvm/device.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/checked.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "common/threading.hpp"
#include "htm/engine.hpp"
#include "obs/trace.hpp"

namespace bdhtm::nvm {
namespace {

std::byte* map_image(std::size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  return static_cast<std::byte*>(p);
}

}  // namespace

Device::Device(const DeviceConfig& cfg) : cfg_(cfg) {
  assert(cfg_.capacity % kCacheLineSize == 0);
  if (cfg_.read_ns | cfg_.write_ns | cfg_.flush_ns | cfg_.fence_ns) {
    spin_calibrate();
  }
  working_ = map_image(cfg_.capacity);
  media_ = map_image(cfg_.capacity);
  n_lines_ = cfg_.capacity / kCacheLineSize;
  line_state_ = std::make_unique<std::atomic<std::uint8_t>[]>(n_lines_);
  pending_ = std::make_unique<Padded<PendingSlot>[]>(kMaxThreads);
  media_written_ = std::make_unique<std::atomic<std::uint8_t>[]>(n_lines_);
}

Device::~Device() {
  ::munmap(working_, cfg_.capacity);
  ::munmap(media_, cfg_.capacity);
}

void Device::charge_read() const {
  if (cfg_.read_ns != 0) spin_for_ns(cfg_.read_ns);
  stats_.loads.fetch_add(1, std::memory_order_relaxed);
}

void Device::charge_write(std::size_t n) {
  if (cfg_.write_ns != 0) spin_for_ns(cfg_.write_ns);
  stats_.stores.fetch_add(1, std::memory_order_relaxed);
  stats_.store_bytes.fetch_add(n, std::memory_order_relaxed);
}

void Device::mark_dirty(const void* addr, std::size_t len) {
  assert(contains(addr) && len > 0);
  const std::size_t first = line_of(offset_of(addr));
  const std::size_t last = line_of(offset_of(addr) + len - 1);
  for (std::size_t l = first; l <= last; ++l) {
    // A pending (clwb'd, unfenced) line that is re-dirtied stays pending:
    // the eventual drain writes back the newer content, as hardware may.
    std::uint8_t expected = kClean;
    line_state_[l].compare_exchange_strong(expected, kDirty,
                                           std::memory_order_release,
                                           std::memory_order_relaxed);
  }
}

void Device::clwb(const void* addr) {
  if (!cfg_.eadr && htm::in_txn()) {
    // The checked build names the protocol rule before the simulated
    // hardware consequence below fires (a capturing test handler sees
    // the diagnostic, then the TSX abort still happens).
    checked::violation(checked::Rule::kPersistInTx, "nvm::Device::clwb");
    // TSX: CLWB/CLFLUSH(OPT) inside a transaction aborts it. This single
    // check is the incompatibility the whole paper is about.
    htm::abort_current(htm::kAbortPersist);
  }
  clwb_nontxn(addr);
}

void Device::clwb_nontxn(const void* addr) {
  // clwb_nontxn is contractually background-thread-only; issued inside a
  // transaction it would persist speculative state without aborting —
  // worse than clwb's honest abort. (Transaction-neutral on eADR.)
  if (checked::enabled() && !cfg_.eadr && htm::in_txn()) {
    checked::violation(checked::Rule::kPersistInTx,
                       "nvm::Device::clwb_nontxn");
  }
  stats_.clwbs.fetch_add(1, std::memory_order_relaxed);
  fault_note(FaultEvent::kClwb);
  if (cfg_.eadr) return;  // persistent cache: already durable
  if (cfg_.flush_ns != 0) spin_for_ns(cfg_.flush_ns);
  const std::size_t line = line_of(offset_of(addr));
  std::uint8_t st = line_state_[line].load(std::memory_order_acquire);
  if (st == kClean) return;  // nothing to write back
  line_state_[line].store(kPending, std::memory_order_release);
  pending_[thread_id()].value.lines.push_back(line);
}

BDHTM_NO_SANITIZE_THREAD
void Device::copy_line_to_media(std::size_t line) {
  std::memcpy(media_ + line * kCacheLineSize,
              working_ + line * kCacheLineSize, kCacheLineSize);
  media_written_[line].store(1, std::memory_order_relaxed);
  stats_.media_line_writes.fetch_add(1, std::memory_order_relaxed);
}

void Device::flush_line_to_media(std::size_t line) {
  // Every path by which a line reaches the media during normal operation
  // funnels through here, so this is the single point where a tripped
  // fault plan freezes the media (power is out: nothing written after the
  // trigger instant lands) and where the trigger event itself is detected
  // — the write that trips the plan is the first one that does NOT
  // complete.
  if (fault_tripped_.load(std::memory_order_acquire)) return;
  fault_note(line_in_watch(line) ? FaultEvent::kCounterWrite
                                 : FaultEvent::kEviction);
  if (fault_tripped_.load(std::memory_order_acquire)) return;
  copy_line_to_media(line);
}

void Device::drain() {
  if (checked::enabled() && !cfg_.eadr && htm::in_txn()) {
    checked::violation(checked::Rule::kPersistInTx, "nvm::Device::drain");
  }
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  fault_note(FaultEvent::kFence);
  if (cfg_.eadr) return;
  if (cfg_.fence_ns != 0) spin_for_ns(cfg_.fence_ns);
  auto& mine = pending_[thread_id()].value.lines;
  if (mine.empty()) return;
  // XPLine accounting: the media is accessed at 256 B granularity, so
  // adjacent lines flushed in one batch coalesce into one media access.
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;
  std::size_t last_xp = ~std::size_t{0};
  for (const std::size_t line : mine) {
    flush_line_to_media(line);
    const std::size_t xp = line / kLinesPerXP;
    if (xp != last_xp) {
      stats_.media_xpline_writes.fetch_add(1, std::memory_order_relaxed);
      last_xp = xp;
    }
    // Only transition pending -> clean; a concurrent store may have
    // re-dirtied the line after our copy, and that content must not be
    // considered durable.
    std::uint8_t expected = kPending;
    line_state_[line].compare_exchange_strong(expected, kClean,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
  }
  mine.clear();
}

void Device::persist(const void* addr, std::size_t len) {
  assert(len > 0);
  const auto* p = reinterpret_cast<const std::byte*>(addr);
  const std::size_t first = line_of(offset_of(p));
  const std::size_t last = line_of(offset_of(p) + len - 1);
  for (std::size_t l = first; l <= last; ++l) {
    clwb(working_ + l * kCacheLineSize);
  }
  drain();
}

void Device::persist_nontxn(const void* addr, std::size_t len) {
  assert(len > 0);
  const auto* p = reinterpret_cast<const std::byte*>(addr);
  const std::size_t first = line_of(offset_of(p));
  const std::size_t last = line_of(offset_of(p) + len - 1);
  for (std::size_t l = first; l <= last; ++l) {
    clwb_nontxn(working_ + l * kCacheLineSize);
  }
  drain();
}

void Device::flush_range_to_media(const void* addr, std::size_t len) {
  assert(len > 0);
  if (cfg_.eadr) return;
  if (checked::enabled() && htm::in_txn()) {
    checked::violation(checked::Rule::kPersistInTx,
                       "nvm::Device::flush_range_to_media");
  }
  const std::size_t first = line_of(offset_of(addr));
  const std::size_t last = line_of(offset_of(addr) + len - 1);
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;
  std::size_t last_xp = ~std::size_t{0};
  for (std::size_t l = first; l <= last; ++l) {
    if (cfg_.flush_ns != 0) spin_for_ns(cfg_.flush_ns);
    stats_.clwbs.fetch_add(1, std::memory_order_relaxed);
    fault_note(FaultEvent::kClwb);
    flush_line_to_media(l);
    const std::size_t xp = l / kLinesPerXP;
    if (xp != last_xp) {
      stats_.media_xpline_writes.fetch_add(1, std::memory_order_relaxed);
      last_xp = xp;
    }
    // Demote pending/dirty to clean; a racing store re-dirties afterwards
    // and will be covered by its own epoch's flush.
    line_state_[l].store(kClean, std::memory_order_release);
  }
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  fault_note(FaultEvent::kFence);
  if (cfg_.fence_ns != 0) spin_for_ns(cfg_.fence_ns);
}

void Device::flush_line_run_to_media(std::size_t first_line, std::size_t n) {
  assert(n > 0 && first_line + n <= n_lines_);
  if (cfg_.eadr) return;
  if (checked::enabled() && htm::in_txn()) {
    checked::violation(checked::Rule::kPersistInTx,
                       "nvm::Device::flush_line_run_to_media");
  }
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;
  std::size_t last_xp = ~std::size_t{0};
  for (std::size_t l = first_line; l < first_line + n; ++l) {
    if (cfg_.flush_ns != 0) spin_for_ns(cfg_.flush_ns);
    stats_.clwbs.fetch_add(1, std::memory_order_relaxed);
    fault_note(FaultEvent::kClwb);
    flush_line_to_media(l);
    const std::size_t xp = l / kLinesPerXP;
    if (xp != last_xp) {
      stats_.media_xpline_writes.fetch_add(1, std::memory_order_relaxed);
      last_xp = xp;
    }
    // Demote pending/dirty to clean; a racing store re-dirties afterwards
    // and will be covered by its own epoch's flush.
    line_state_[l].store(kClean, std::memory_order_release);
  }
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  fault_note(FaultEvent::kFence);
  if (cfg_.fence_ns != 0) spin_for_ns(cfg_.fence_ns);
}

bool Device::line_is_durable(const void* addr) const {
  const std::size_t line = line_of(offset_of(addr));
  if (cfg_.eadr) {
    return true;  // cache is in the persistence domain
  }
  return std::memcmp(working_ + line * kCacheLineSize,
                     media_ + line * kCacheLineSize, kCacheLineSize) == 0;
}

void Device::simulate_crash() {
  obs::trace_instant(obs::TraceEventType::kCrash);
  // Caller has quiesced workers: no concurrent access below.
  if (fault_tripped_.load(std::memory_order_acquire)) {
    // Power died at the plan's trigger instant and the media has been
    // frozen since. No eviction lottery: an armed plan is a fully
    // deterministic crash (same plan + same op sequence = bit-identical
    // media image). Apply the plan's corruption to the frozen image.
    for (std::size_t l = 0; l < n_lines_; ++l) {
      line_state_[l].store(kClean, std::memory_order_relaxed);
    }
    const MediaCorruption corruption = fault_plan_.crash_corruption;
    fault_armed_.store(false, std::memory_order_release);
    fault_tripped_.store(false, std::memory_order_release);
    if (corruption.any()) corrupt_media(corruption);
  } else {
    // A plan that never tripped (trigger beyond the run's event count) is
    // still consumed here: plans are one-shot per crash, never carried
    // into the post-reboot run.
    fault_armed_.store(false, std::memory_order_release);
    Rng rng(cfg_.crash_seed);
    cfg_.crash_seed = splitmix64(cfg_.crash_seed + 1);  // vary across crashes
    for (std::size_t l = 0; l < n_lines_; ++l) {
      const std::uint8_t st =
          line_state_[l].load(std::memory_order_relaxed);
      if (st == kClean) continue;
      double survive_p = 0.0;
      if (cfg_.eadr) {
        survive_p = 1.0;  // persistent cache: everything written survives
      } else if (st == kPending) {
        survive_p = cfg_.pending_survival;
      } else {
        survive_p = cfg_.dirty_survival;
      }
      if (rng.next_double() < survive_p) {
        // The line happened to reach the media. Raw copy, NOT
        // flush_line_to_media: the crash itself must not count fault
        // events, or a profile run's trigger_at indices would stop
        // mapping onto workload events across a crash boundary.
        copy_line_to_media(l);
      }
      line_state_[l].store(kClean, std::memory_order_relaxed);
    }
  }
  // After "reboot" the working image IS the media image — including any
  // lines that were modified without being reported dirty (a structure
  // that forgets mark_dirty loses those writes, as it should).
  std::memcpy(working_, media_, cfg_.capacity);
  for (int t = 0; t < kMaxThreads; ++t) pending_[t].value.lines.clear();
}

void Device::arm_fault_plan(const FaultPlan& plan) {
  // trigger_at indexes the event counter since device construction: arm
  // before running the workload (enumeration profiles a clean run first,
  // then re-runs the identical sequence on a fresh device per trigger).
  fault_plan_ = plan;
  fault_tripped_.store(false, std::memory_order_release);
  fault_armed_.store(true, std::memory_order_release);
}

void Device::disarm_fault_plan() {
  fault_armed_.store(false, std::memory_order_release);
  fault_tripped_.store(false, std::memory_order_release);
}

void Device::fault_note(FaultEvent e) {
  const int idx = static_cast<int>(e);
  const std::uint64_t n =
      fault_counts_[idx].fetch_add(1, std::memory_order_relaxed);
  if (fault_armed_.load(std::memory_order_acquire) &&
      !fault_tripped_.load(std::memory_order_relaxed) &&
      fault_plan_.event == e && n == fault_plan_.trigger_at) {
    fault_tripped_.store(true, std::memory_order_seq_cst);
    obs::trace_instant(obs::TraceEventType::kFaultTrip,
                       static_cast<std::uint64_t>(e), n);
  }
}

void Device::set_fault_watch(const void* addr, std::size_t len) {
  assert(contains(addr) && len > 0);
  watch_first_line_ = line_of(offset_of(addr));
  watch_last_line_ = line_of(offset_of(addr) + len - 1);
}

std::uint64_t Device::media_lines_written() const {
  std::uint64_t n = 0;
  for (std::size_t l = 0; l < n_lines_; ++l) {
    if (media_written_[l].load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

std::uint64_t Device::corrupt_media(const MediaCorruption& c) {
  if (!c.any()) return 0;
  // Candidates: lines that ever reached the media. Blank pages cannot
  // rot — real media failures hit cells that were written.
  std::vector<std::size_t> cand;
  for (std::size_t l = 0; l < n_lines_; ++l) {
    if (media_written_[l].load(std::memory_order_relaxed) == 0) continue;
    if (c.spare_watch_range && line_in_watch(l)) continue;
    cand.push_back(l);
  }
  if (cand.empty()) return 0;
  Rng rng(c.seed);
  auto* bytes = reinterpret_cast<unsigned char*>(media_);
  std::vector<std::size_t> hit;
  constexpr std::size_t kLinesPerXP = kXPLineSize / kCacheLineSize;

  for (std::uint32_t i = 0; i < c.torn_xplines; ++i) {
    // Torn XPLine write: bytes past a random cut hold garbage, as if the
    // 256 B media access was interrupted mid-way.
    const std::size_t l = cand[rng.next_below(cand.size())];
    const std::size_t xp_first = (l / kLinesPerXP) * kLinesPerXP;
    const std::size_t cut = 1 + rng.next_below(kXPLineSize - 1);
    for (std::size_t b = cut; b < kXPLineSize; ++b) {
      const std::size_t ll = xp_first + b / kCacheLineSize;
      if (ll >= n_lines_) break;
      // Never-written neighbor lines inside the XPLine stay blank: the
      // contract above says blank pages cannot rot into fake blocks.
      if (media_written_[ll].load(std::memory_order_relaxed) == 0) continue;
      if (c.spare_watch_range && line_in_watch(ll)) continue;
      bytes[xp_first * kCacheLineSize + b] =
          static_cast<unsigned char>(rng.next());
    }
    for (std::size_t j = 0; j < kLinesPerXP; ++j) {
      const std::size_t ll = xp_first + j;
      if (ll >= n_lines_ || (ll + 1) * kCacheLineSize <= xp_first * kCacheLineSize + cut) continue;
      if (media_written_[ll].load(std::memory_order_relaxed) == 0) continue;
      if (c.spare_watch_range && line_in_watch(ll)) continue;
      hit.push_back(ll);
    }
  }
  for (std::uint32_t i = 0; i < c.dropped_lines; ++i) {
    // Dropped write-back: the line's last write never happened; 3D-XPoint
    // reads the region as if freshly formatted.
    const std::size_t l = cand[rng.next_below(cand.size())];
    std::memset(bytes + l * kCacheLineSize, 0, kCacheLineSize);
    hit.push_back(l);
  }
  for (std::uint32_t i = 0; i < c.bit_flips; ++i) {
    const std::size_t l = cand[rng.next_below(cand.size())];
    const std::size_t byte = rng.next_below(kCacheLineSize);
    bytes[l * kCacheLineSize + byte] ^=
        static_cast<unsigned char>(1u << rng.next_below(8));
    hit.push_back(l);
  }

  // Mirror into the working image: after reboot, reads see the corrupt
  // media content.
  std::sort(hit.begin(), hit.end());
  hit.erase(std::unique(hit.begin(), hit.end()), hit.end());
  for (const std::size_t l : hit) {
    std::memcpy(working_ + l * kCacheLineSize, media_ + l * kCacheLineSize,
                kCacheLineSize);
  }
  return hit.size();
}

}  // namespace bdhtm::nvm
