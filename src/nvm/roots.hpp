// Named persistent root slots. The first 4 KiB of a device are reserved
// (PAllocator::kHeaderReserve); the epoch system's root occupies offset 0.
// Offsets 128..255 hold sixteen 8-byte root slots that persistent
// structures use to find their own metadata (e.g. the PMwCAS descriptor
// pool, a hash table's directory block) after a crash.
#pragma once

#include <cstdint>

#include "nvm/device.hpp"

namespace bdhtm::nvm {

inline constexpr int kNumRootSlots = 16;

/// Conventional slot assignments (collisions are the caller's problem;
/// each device typically hosts one top-level structure).
enum RootSlot : int {
  kRootPMwCASPool = 0,
  kRootStructure = 1,   // primary structure metadata
  kRootStructure2 = 2,  // secondary (e.g. a log region)
};

inline std::uint64_t* root_slot(Device& dev, int idx) {
  return reinterpret_cast<std::uint64_t*>(dev.base() + 128 + 8 * idx);
}

/// Store `off` in slot `idx` and persist it.
inline void publish_root(Device& dev, int idx, std::uint64_t off) {
  std::uint64_t* slot = root_slot(dev, idx);
  *slot = off;
  dev.mark_dirty(slot, 8);
  dev.persist_nontxn(slot, 8);
}

}  // namespace bdhtm::nvm
