// Simulated NVM device (DESIGN.md §2).
//
// The paper's testbed pairs volatile CPU caches with Intel Optane DCPMM.
// The hazard that motivates all of persistent programming is the split
// between the *working* state (caches + memory as the CPU sees them) and
// the *durable* state (what the media holds after power loss): dirty cache
// lines reach the media in an order chosen by the replacement policy unless
// the program issues clwb + fence.
//
// This device reproduces that split with two images:
//   - working image: what loads/stores observe,
//   - media image:   what survives simulate_crash().
// clwb() queues a line; drain (sfence) copies queued lines to the media.
// clwb() issued inside a hardware transaction aborts it, exactly like TSX.
// At a simulated crash, un-flushed dirty lines survive only with a seeded
// probability, modelling unpredictable cache eviction order; everything
// else reverts to the media image. In eADR mode (persistent cache) every
// dirty line survives and clwb is a transaction-neutral no-op.
//
// A calibrated latency/bandwidth model (reads ~3x DRAM, flushes ~10x,
// XPLine-granularity media accounting) is enabled in benchmarks so the
// cost asymmetries that drive the paper's results are present.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/defs.hpp"
#include "nvm/fault_plan.hpp"

namespace bdhtm::nvm {

struct DeviceConfig {
  std::size_t capacity = std::size_t{1} << 28;  // 256 MiB default
  bool eadr = false;  // persistent cache: stores are durable at once

  // Latency model in nanoseconds; 0 disables (unit-test mode).
  std::uint32_t read_ns = 0;   // charged per modeled NVM load
  std::uint32_t write_ns = 0;  // charged per modeled NVM store
  std::uint32_t flush_ns = 0;  // charged per clwb
  std::uint32_t fence_ns = 0;  // charged per drain/sfence

  // Crash model: survival probability of volatile lines at a crash.
  double dirty_survival = 0.0;    // dirty, never clwb'd (eviction may have
                                  // happened to write it back anyway)
  double pending_survival = 0.5;  // clwb'd but not yet fenced
  std::uint64_t crash_seed = 0x5eed;
};

struct DeviceStats {
  std::atomic<std::uint64_t> loads{0};
  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> store_bytes{0};
  std::atomic<std::uint64_t> clwbs{0};
  std::atomic<std::uint64_t> fences{0};
  std::atomic<std::uint64_t> media_line_writes{0};  // 64 B units to media
  std::atomic<std::uint64_t> media_xpline_writes{0};  // 256 B media accesses
};

class Device {
 public:
  explicit Device(const DeviceConfig& cfg);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  std::byte* base() { return working_; }
  const std::byte* base() const { return working_; }
  std::size_t capacity() const { return cfg_.capacity; }
  bool eadr() const { return cfg_.eadr; }
  const DeviceConfig& config() const { return cfg_; }

  bool contains(const void* p) const {
    auto a = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(working_);
    return a >= b && a < b + cfg_.capacity;
  }

  // ---- Modeled access path (latency + dirty tracking) ----

  template <typename T>
  T read(const T* addr) const {
    charge_read();
    return *addr;
  }

  /// Account one modeled NVM load without touching memory — used when the
  /// actual load must go through the HTM engine for atomicity.
  void account_read() const { charge_read(); }

  template <typename T>
  void write(T* addr, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    *addr = value;
    mark_dirty(addr, sizeof(T));
    charge_write(sizeof(T));
  }

  void write_bytes(void* dst, const void* src, std::size_t n) {
    std::memcpy(dst, src, n);
    mark_dirty(dst, n);
    charge_write(n);
  }

  /// Record that [addr, addr+len) was modified by a plain store or
  /// placement-new. Every store into the working image must be reported
  /// through write()/write_bytes()/mark_dirty() or it will (correctly)
  /// never survive a crash.
  void mark_dirty(const void* addr, std::size_t len);

  // ---- Persist instructions ----

  /// Write-back of the line containing addr. Aborts an active hardware
  /// transaction (TSX semantics) unless the device is in eADR mode.
  void clwb(const void* addr);

  /// Like clwb but never aborts a transaction — models CLFLUSH issued by a
  /// background thread that is guaranteed to run outside transactions.
  void clwb_nontxn(const void* addr);

  /// Store fence: all lines clwb'd by this thread are durable afterwards.
  void drain();

  /// clwb every line of [addr, addr+len), then drain.
  void persist(const void* addr, std::size_t len);
  void persist_nontxn(const void* addr, std::size_t len);

  /// Unconditionally write the range back to the media (no dirty-state
  /// check): used by the epoch system's background flusher for tracked
  /// ranges, whose content may have been stored through paths that do
  /// not mark lines dirty at byte granularity. Caller follows with
  /// drain() semantics implicitly (the copy is immediate). Never called
  /// inside a transaction.
  void flush_range_to_media(const void* addr, std::size_t len);

  // ---- Bulk line-run write-back (epoch write-back pipeline) ----
  //
  // The epoch advancer coalesces tracked ranges into sorted, disjoint
  // runs of cache lines and fans them out across flusher threads; each
  // run becomes one bulk call here. Accounting is identical to an
  // equivalent flush_range_to_media call (per-line clwb + latency,
  // XPLine-granularity media-access coalescing, one fence per call), so
  // a single-flusher no-coalesce pipeline reproduces the naive
  // per-range behaviour exactly.

  /// Index of the cache line containing p (for building line runs).
  std::size_t line_index(const void* p) const {
    return line_of(offset_of(p));
  }
  std::size_t n_lines() const { return n_lines_; }

  /// Write lines [first_line, first_line + n) back to the media. Safe to
  /// call concurrently from multiple flusher threads as long as their
  /// runs are disjoint. Never called inside a transaction.
  void flush_line_run_to_media(std::size_t first_line, std::size_t n);

  // ---- Crash machinery ----

  /// Power-failure simulation. Caller must have quiesced all worker
  /// threads. Unfenced volatile lines survive per the crash model; all
  /// other volatile content is lost; afterwards the working image equals
  /// the media image, as it would after reboot.
  void simulate_crash();

  /// True durable content of the line containing addr equals its working
  /// content (used by tests to assert flush behaviour without crashing).
  bool line_is_durable(const void* addr) const;

  /// Read directly from the media image (what a crash would preserve).
  template <typename T>
  T media_read(const T* addr) const {
    T out;
    std::memcpy(&out, media_ + offset_of(addr), sizeof(T));
    return out;
  }

  // ---- Fault-plan machinery (fault_plan.hpp) ----

  /// Arm a deterministic crash at the plan's trigger event. One-shot:
  /// the following simulate_crash() disarms it. Caller must be quiesced
  /// relative to re-arming (workers may be running when the plan trips).
  void arm_fault_plan(const FaultPlan& plan);
  void disarm_fault_plan();

  /// True once the armed plan's trigger event occurred; the media is
  /// frozen from that instant until simulate_crash().
  bool fault_tripped() const {
    return fault_tripped_.load(std::memory_order_acquire);
  }

  /// Events of class `e` observed since construction. Counted whether or
  /// not a plan is armed, so a profiling run can size an enumeration.
  std::uint64_t fault_events(FaultEvent e) const {
    return fault_counts_[static_cast<int>(e)].load(std::memory_order_relaxed);
  }

  /// Register the range whose media writes count as kCounterWrite events
  /// (the epoch system wires its persistent root here). Also spared from
  /// random corruption by MediaCorruption::spare_watch_range.
  void set_fault_watch(const void* addr, std::size_t len);

  /// Inject corruption into the media image (and mirror it into the
  /// working image, as a post-reboot read would see it). Targets only
  /// lines ever written to the media. Caller must be quiesced. Returns
  /// the number of lines corrupted.
  std::uint64_t corrupt_media(const MediaCorruption& c);

  /// Lines ever written to the media — the candidate set corrupt_media
  /// draws from; lets sweeps express corruption as a fraction.
  std::uint64_t media_lines_written() const;

  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

 private:
  enum LineState : std::uint8_t { kClean = 0, kDirty = 1, kPending = 2 };

  std::size_t offset_of(const void* p) const {
    return static_cast<std::size_t>(reinterpret_cast<const std::byte*>(p) -
                                    working_);
  }
  void charge_read() const;
  void charge_write(std::size_t n);
  /// Raw working→media copy of one line, no fault-plan interaction. Used
  /// by flush_line_to_media and by simulate_crash's eviction lottery,
  /// which must not perturb the fault-event counters.
  void copy_line_to_media(std::size_t line);
  void flush_line_to_media(std::size_t line);

  /// Count one fault event and trip the armed plan when it is the
  /// trigger. Relaxed counters: the enumeration tests that rely on exact
  /// trigger ordering run the flush path single-threaded.
  void fault_note(FaultEvent e);
  bool line_in_watch(std::size_t line) const {
    return line >= watch_first_line_ && line <= watch_last_line_;
  }

  DeviceConfig cfg_;
  std::byte* working_ = nullptr;
  std::byte* media_ = nullptr;
  std::size_t n_lines_ = 0;
  std::unique_ptr<std::atomic<std::uint8_t>[]> line_state_;

  // clwb'd-but-not-fenced lines, per registered thread.
  struct PendingSlot {
    std::vector<std::size_t> lines;
  };
  std::unique_ptr<Padded<PendingSlot>[]> pending_;

  // ---- Fault-plan state ----
  FaultPlan fault_plan_{};
  std::atomic<bool> fault_armed_{false};
  std::atomic<bool> fault_tripped_{false};
  std::atomic<std::uint64_t>
      fault_counts_[static_cast<int>(FaultEvent::kNumEvents)]{};
  // Watch range in line indices; empty by default (first > last).
  std::size_t watch_first_line_ = 1;
  std::size_t watch_last_line_ = 0;
  // One byte per line: set once the line has ever reached the media.
  std::unique_ptr<std::atomic<std::uint8_t>[]> media_written_;

  mutable DeviceStats stats_;
};

}  // namespace bdhtm::nvm
