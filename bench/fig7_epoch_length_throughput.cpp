// Fig. 7 (+ §5.1 abort study) — Single-thread PHTM-vEB throughput as a
// function of epoch length, for uniform / Zipf(0.9) / Zipf(0.99) key
// distributions, 80% writes.
//
// Expected shape (paper): skewed workloads gain (16.7% at theta 0.9,
// 26.7% at 0.99) as the epoch grows from 1 us to 10 ms — background
// flushes stop evicting hot lines — with diminishing/negative returns
// beyond that as memory pressure grows. Uniform workloads are flat.
// The §5.1 companion claim also reproduced here: epoch-flush-induced
// aborts stay under ~2% of transactions at every epoch length.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "htm/engine.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

double run_cell(int ubits, double theta, std::uint64_t epoch_us,
                double* abort_pct) {
  const std::size_t cap =
      std::max<std::size_t>(768ull << 20, (std::size_t{1} << ubits) * 160);
  nvm::Device dev(bench::nvm_cfg(cap));
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = epoch_us;
  epoch::EpochSys es(pa, ecfg);
  veb::PHTMvEB tree(es, ubits);

  workload::Config cfg;
  cfg.key_space = std::uint64_t{1} << ubits;
  cfg.zipf_theta = theta;
  cfg.read_pct = 20;  // 80% writes (paper)
  cfg.insert_pct = 40;
  cfg.remove_pct = 40;
  cfg.threads = 1;
  cfg.duration_ms = bench::bench_ms();
  workload::prefill(tree, cfg);
  htm::reset_stats();
  const double mops = workload::run_workload(tree, cfg).mops();
  bench::note_epoch_stats(es.stats());
  const auto s = htm::collect_stats();
  bench::note_htm_stats();  // fold this cell's window into the export
  *abort_pct = s.attempts() > 0
                   ? 100.0 * s.total_aborts() / s.attempts()
                   : 0.0;
  return mops;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig7_epoch_length_throughput", argc, argv);
  bench::set_structure("phtm-veb");
  const int ubits = bench::universe_bits(18);  // paper: 2^22 workload size
  bench::print_header(
      "Fig. 7: single-thread PHTM-vEB throughput vs epoch length",
      "paper: workload 2^22 keys, 80% writes, epoch 1us..10s; scaled "
      "default universe 2^18, epoch sweep 10us..1s");

  const std::uint64_t epochs_us[] = {10, 100, 1'000, 10'000, 100'000,
                                     1'000'000};
  std::printf("%-16s", "epoch length");
  for (auto e : epochs_us) {
    if (e < 1000) {
      std::printf(" %7lluus", static_cast<unsigned long long>(e));
    } else if (e < 1'000'000) {
      std::printf(" %7llums", static_cast<unsigned long long>(e / 1000));
    } else {
      std::printf(" %8llus", static_cast<unsigned long long>(e / 1'000'000));
    }
  }
  std::printf("\n");

  for (const auto& [name, theta] : {std::pair{"uniform", 0.0},
                                    std::pair{"zipf 0.90", 0.9},
                                    std::pair{"zipf 0.99", 0.99}}) {
    std::printf("%-16s", name);
    double worst_abort = 0;
    for (auto e : epochs_us) {
      double abort_pct = 0;
      const double mops = run_cell(ubits, theta, e, &abort_pct);
      char label[24];
      std::snprintf(label, sizeof label, "epoch_us=%llu",
                    static_cast<unsigned long long>(e));
      bench::record_row(name, label, 1, mops, "Mops");
      std::printf(" %9.3f", mops);
      std::fflush(stdout);
      worst_abort = std::max(worst_abort, abort_pct);
    }
    std::printf("   (max abort share %.2f%%)\n", worst_abort);
  }
  return bench::finish();
}
