// Fig. 11 — fallback-policy contention: global vs striped elided-lock
// fallback (DESIGN.md §11) under a Zipfian hot-key write-heavy mix.
//
// The global policy's cost is collateral damage: one thread's fallback
// subscribes-and-aborts EVERY concurrent transaction on the structure,
// hot key or not. The striped policy's fast path subscribes only to the
// stripes covering its footprint and the fallback acquires exactly
// those, so fallbacks on the (many) cold stripes stop aborting each
// other and lock_subscription aborts concentrate where the conflicts
// actually are.
//
// Cells: {bd-spash, phtm-veb, bdl-skiplist} x {global, striped(64)} x
// BDHTM_THREADS, Zipf-0.99 write-heavy over a small (hot) key space,
// submitted as 4-op envelope batches (epoch::run_envelope +
// apply_batch — the service layer's submission path).
//
// Organic fallbacks at simulator scale hold their stripes for tens of
// nanoseconds — far shorter than a scheduler quantum, so on an
// oversubscribed host no concurrent thread is ever RUNNING while a
// window is open and the contention goes unmeasured (wall-clock
// contention needs true parallelism). Instead, one dedicated injector
// thread makes the hold windows explicit and policy-comparable: every
// BDHTM_FIG11_PERIOD_US it acquires the union of kBatch hot keys'
// published subscription footprints (ShardIndex::footprint — exactly
// what a slow batch fallback would hold) through the structure's own
// FallbackPolicy and keeps it held for BDHTM_FIG11_HOLD_US of wall
// time, yielding in chunks so worker threads run and observe the
// window. Workers pay through the real protocol: their transactions
// subscribe, abort with the lock-subscription code, and wait.
//
// On a time-sliced host, end-to-end Mops confounds the policies with
// scheduler artifacts (whichever policy parks threads fastest hands the
// injector its next quantum sooner), so two schedule-robust quantities
// carry the comparison: hold_mops — worker goodput per second of
// window-OPEN time, i.e. throughput while a fallback is actually held —
// and a deterministic single-threaded probe run after the timed window
// (hold a hot footprint, run subscribe-only transactions against other
// hot keys, count subscription aborts; pure footprint geometry, no
// scheduling). Rows per cell: Mops, hold_mops, lock_subscription share
// of aborts, fallbacks per Mop, p50/p99 batch latency. The "hotkey"
// table repeats the max-thread cells as absolute counts plus the probe
// results (CI's jq assert compares the probe rows).
//
// Expected shape: striped cuts the lock_subscription share and count on
// bd-spash and bdl-skiplist (segment- / word-striped footprints) and
// improves hot-key throughput at >= 8 threads; phtm-veb is the honest
// loser — every op's footprint includes the shared stripe 0, so striping
// buys little there (see DESIGN.md §11 "when striped loses").
//
// The final table reruns fig10's open-loop overload cell (admission
// shedding, queue=8) with the service's shards on each policy.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/pallocator.hpp"
#include "bench/bench_common.hpp"
#include "common/spin.hpp"
#include "common/threading.hpp"
#include "epoch/epoch_sys.hpp"
#include "htm/engine.hpp"
#include "htm/fallback.hpp"
#include "nvm/device.hpp"
#include "svc/kvstore.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

constexpr int kStriped = 64;      // stripes for the striped-policy cells
constexpr int kHashDepth = 6;     // 2^6 segments so BD-Spash allows 64
constexpr std::size_t kBatch = 4; // ops per envelope batch (see below)

std::size_t device_cap(std::uint64_t keys) {
  return std::max<std::size_t>(512ull << 20, keys * 512);
}

// Injected hold windows: duration of each held window and the period
// between window starts. Defaults give a 20% duty cycle — a service
// whose fallbacks are slow (irrevocable bodies doing NVM-latency work)
// but not the common case.
std::uint64_t hold_ns() {
  return static_cast<std::uint64_t>(env_int("BDHTM_FIG11_HOLD_US", 200)) *
         1000;
}
std::uint64_t period_ns() {
  return static_cast<std::uint64_t>(
             env_int("BDHTM_FIG11_PERIOD_US", 1000)) *
         1000;
}

struct World {
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<epoch::EpochSys> es;
};

World make_world(std::uint64_t keys) {
  World w;
  w.dev = std::make_unique<nvm::Device>(bench::nvm_cfg(device_cap(keys)));
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev);
  epoch::EpochSys::Config ecfg;
  // Long epochs: advances stall every envelope for milliseconds while
  // the flusher drains, which is orthogonal noise here — this figure
  // measures fallback-lock contention, so keep the measured window
  // mostly advance-free (fig7/fig8 own the epoch-length trade-off).
  ecfg.epoch_length_us = 250'000;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
  return w;
}

double q_us(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0;
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(i),
                   ns.end());
  return static_cast<double>(ns[i]) / 1e3;
}

struct Cell {
  double mops = 0;
  double hold_mops = 0;  // goodput while a fallback window is open
  double p50_us = 0, p99_us = 0;
  double shed_pct = 0;
  std::uint64_t probe_lock_sub = 0;  // deterministic probe (see run_cell)
  std::uint64_t probe_total = 0;
  htm::TxStats stats{};
};

/// One measured cell: a direct (library-level) timed run against one
/// shard, kBatch-op envelope batches per submission, per-batch latency
/// capture and an isolated HTM stats window.
Cell run_cell(svc::Backend b, int stripes, const workload::Config& cfg,
              int ubits) {
  // 24 cells x (workers + injector + epoch flushers) would exhaust the
  // process-lifetime thread-id space; every cell's threads are joined
  // before the next begins, so recycling ids between cells is safe.
  reset_thread_ids_for_testing();
  World w = make_world(cfg.key_space);
  svc::ShardOptions opt;
  opt.veb_ubits = ubits;
  opt.hash_initial_depth = kHashDepth;
  opt.fallback_stripes = stripes;
  auto shard = svc::make_shard(b, *w.es, opt);
  workload::prefill(*shard, cfg);
  htm::reset_stats();  // measure only the timed window

  std::atomic<bool> start{false}, stop{false};
  std::atomic<bool> window_open{false};
  std::atomic<std::uint64_t> open_ns{0};
  std::vector<std::uint64_t> ops_done(cfg.threads, 0);
  std::vector<std::uint64_t> ops_in_hold(cfg.threads, 0);
  std::vector<std::vector<std::uint64_t>> lat(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (int c = 0; c < cfg.threads; ++c) {
    threads.emplace_back([&, c] {
      workload::KeyGen gen(cfg, splitmix64(cfg.seed + c * 1000003));
      auto& l = lat[c];
      l.reserve(1 << 16);
      while (!start.load(std::memory_order_acquire)) {
      }
      epoch::BatchOp batch[kBatch];
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& op : batch) {
          const std::uint64_t k = gen.next();
          const auto dice = gen.rng().next_below(100);
          if (dice < static_cast<std::uint64_t>(cfg.read_pct)) {
            op = epoch::BatchOp{epoch::BatchOp::Kind::kGet, k, 0};
          } else if (dice < static_cast<std::uint64_t>(cfg.read_pct +
                                                       cfg.insert_pct)) {
            op = epoch::BatchOp{epoch::BatchOp::Kind::kPut, k, k + 1};
          } else {
            op = epoch::BatchOp{epoch::BatchOp::Kind::kRemove, k, 0};
          }
        }
        const std::uint64_t t0 = now_ns();
        epoch::run_envelope(*w.es, kBatch,
                            [&](std::size_t first, std::size_t count) {
                              shard->apply_batch(batch + first, count);
                            });
        l.push_back(now_ns() - t0);
        ops_done[c] += kBatch;
        // Batches finished while a fallback window was open are the
        // goodput striping is supposed to rescue (under the global
        // policy every concurrent transaction aborts and waits instead).
        if (window_open.load(std::memory_order_relaxed)) {
          ops_in_hold[c] += kBatch;
        }
      }
    });
  }
  // Injector: periodic slow-fallback hold windows over hot-key
  // footprints (see the file comment). Yield-chunked so workers run —
  // and observe the held stripes — while the window is open. The open
  // time is measured, not assumed: on an oversubscribed host a window
  // stays open until the scheduler cycles back to the injector, and it
  // stays open LONGER under policies that let peers keep working.
  std::thread injector([&] {
    workload::KeyGen gen(cfg, splitmix64(cfg.seed ^ 0xF16F11ull));
    htm::FallbackPolicy& pol = shard->fallback_policy();
    while (!start.load(std::memory_order_acquire)) {
    }
    std::uint64_t next = now_ns();
    while (!stop.load(std::memory_order_relaxed)) {
      htm::StripeMask mask = 0;
      for (std::size_t i = 0; i < kBatch; ++i) {
        mask |= shard->footprint(gen.next());
      }
      {
        htm::PolicyGuard g(pol, mask);
        const std::uint64_t t_open = now_ns();
        window_open.store(true, std::memory_order_relaxed);
        const std::uint64_t t_end = t_open + hold_ns();
        while (now_ns() < t_end && !stop.load(std::memory_order_relaxed)) {
          spin_for_ns(2000);
          std::this_thread::yield();
        }
        window_open.store(false, std::memory_order_relaxed);
        open_ns.fetch_add(now_ns() - t_open, std::memory_order_relaxed);
      }
      next += period_ns();
      while (now_ns() < next && !stop.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  });

  const std::uint64_t t0 = now_ns();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  injector.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;

  Cell cell;
  cell.stats = htm::collect_stats();
  bench::note_htm_stats();
  htm::reset_stats();
  bench::note_epoch_stats(w.es->stats());

  std::vector<std::uint64_t> all;
  std::uint64_t ops = 0, hold_ops = 0;
  for (int c = 0; c < cfg.threads; ++c) {
    ops += ops_done[c];
    hold_ops += ops_in_hold[c];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  cell.mops = secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  const double hold_secs =
      static_cast<double>(open_ns.load(std::memory_order_relaxed)) / 1e9;
  cell.hold_mops = hold_secs > 0
                       ? static_cast<double>(hold_ops) / hold_secs / 1e6
                       : 0;
  cell.p50_us = q_us(all, 0.50);
  cell.p99_us = q_us(all, 0.99);

  // Deterministic collateral probe, scheduler-free by construction: hold
  // one hot batch's footprint (as a slow fallback would), then run one
  // subscribe-only transaction per other hot key and count which abort
  // on the subscription. Same thread holds and probes — ElidedLock
  // subscription tests the lock WORD, not ownership — so the counts
  // depend only on footprint geometry, identical on any host. This is
  // the quantity CI asserts on.
  {
    workload::KeyGen gen(cfg, splitmix64(cfg.seed ^ 0x9B0BE5ull));
    htm::FallbackPolicy& pol = shard->fallback_policy();
    constexpr int kWindows = 64, kProbes = 16;
    for (int wdx = 0; wdx < kWindows; ++wdx) {
      htm::StripeMask mask = 0;
      for (std::size_t i = 0; i < kBatch; ++i) {
        mask |= shard->footprint(gen.next());
      }
      htm::PolicyGuard g(pol, mask);
      for (int p = 0; p < kProbes; ++p) {
        const std::uint64_t k = gen.next();
        const htm::StripeMask pm = shard->footprint(k);
        unsigned st;
        do {  // retry injected (spurious/capacity-model) aborts: the
              // subscription outcome is fixed while the window is held
          st = htm::run([&](htm::Txn& tx) { pol.subscribe(tx, pm); });
        } while (st != htm::kCommitted &&
                 (st & htm::kAbortExplicit) == 0);
        cell.probe_total++;
        if (st != htm::kCommitted &&
            htm::is_lock_subscription_code(htm::explicit_code(st))) {
          cell.probe_lock_sub++;
        }
      }
    }
    htm::reset_stats();  // probe aborts are not part of the cell stats
  }
  return cell;
}

/// Fig. 10's open-loop overload cell (admission control under a shallow
/// queue), rerun with the store's shards on the given fallback policy.
Cell run_overload(int stripes, const workload::Config& cfg, int ubits) {
  constexpr int kClients = 8;
  constexpr std::size_t kPool = 64;
  reset_thread_ids_for_testing();  // see run_cell
  World w = make_world(cfg.key_space);
  svc::KVStoreConfig scfg;
  scfg.backend = svc::Backend::kHash;
  scfg.shards = 1;
  scfg.workers = 1;
  scfg.clients = kClients;
  scfg.queue_capacity = 8;  // shallow: back-pressure bites early
  scfg.max_batch = 16;
  scfg.shard_opt.veb_ubits = ubits;
  scfg.shard_opt.fallback_stripes = stripes;
  svc::KVStore store(*w.es, scfg);
  struct StorePrefill {
    svc::KVStore& store;
    bool insert(std::uint64_t k, std::uint64_t v) {
      return store.shard(store.shard_of(k)).insert(k, v);
    }
  } pf{store};
  workload::prefill(pf, cfg);

  std::atomic<bool> start{false}, stop{false};
  std::vector<std::uint64_t> submitted(kClients, 0), shed(kClients, 0),
      served(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      workload::KeyGen gen(cfg, splitmix64(cfg.seed + c * 7777));
      std::vector<svc::Request> pool(kPool);
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& r : pool) {
          if (r.state.load(std::memory_order_acquire) ==
              svc::Request::kQueued) {
            continue;  // still in flight; offer elsewhere
          }
          if (r.state.load(std::memory_order_relaxed) ==
              svc::Request::kDone) {
            if (r.status != svc::Status::kRejected) served[c]++;
          }
          const std::uint64_t k = gen.next();
          const auto dice = gen.rng().next_below(100);
          if (dice < static_cast<std::uint64_t>(cfg.read_pct)) {
            r = svc::Request::get(k);
          } else if (dice < static_cast<std::uint64_t>(cfg.read_pct +
                                                       cfg.insert_pct)) {
            r = svc::Request::put(k, k + 1);
          } else {
            r = svc::Request::del(k);
          }
          submitted[c]++;
          if (!store.submit(c, &r)) shed[c]++;
        }
        std::this_thread::yield();
      }
      for (auto& r : pool) {
        if (r.state.load(std::memory_order_acquire) ==
            svc::Request::kQueued) {
          store.wait(&r);
        }
      }
    });
  }
  const std::uint64_t t0 = now_ns();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  store.close();
  bench::note_epoch_stats(w.es->stats());

  std::uint64_t sub = 0, rej = 0, ok = 0;
  for (int c = 0; c < kClients; ++c) {
    sub += submitted[c];
    rej += shed[c];
    ok += served[c];
  }
  Cell cell;
  cell.shed_pct = sub > 0 ? 100.0 * static_cast<double>(rej) /
                                static_cast<double>(sub)
                          : 0;
  cell.mops = secs > 0 ? static_cast<double>(ok) / secs / 1e6 : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig11_fallback_contention", argc, argv);
  bench::set_structure("bd-spash");
  bench::set_structure("phtm-veb");
  bench::set_structure("bdl-skiplist");
  const int ubits = bench::universe_bits(14);  // small => hot
  const std::uint64_t keys = std::uint64_t{1} << ubits;
  const std::vector<int> threads = bench::thread_counts();
  const int max_t = *std::max_element(threads.begin(), threads.end());

  char note[160];
  std::snprintf(note, sizeof note,
                "Zipf 0.99 write-heavy, %llu keys, %zu-op envelope batches; "
                "injected hot-key holds %llu us every %llu us; striped = %d "
                "stripes",
                static_cast<unsigned long long>(keys), kBatch,
                static_cast<unsigned long long>(hold_ns() / 1000),
                static_cast<unsigned long long>(period_ns() / 1000),
                kStriped);
  bench::print_header(
      "Fig. 11: fallback contention — global vs striped elided-lock "
      "fallback policy",
      note);

  const struct {
    svc::Backend b;
    const char* name;
  } backends[] = {
      {svc::Backend::kHash, "bd-spash"},
      {svc::Backend::kVebTree, "phtm-veb"},
      {svc::Backend::kSkiplist, "bdl-skiplist"},
  };
  const struct {
    int stripes;
    const char* name;
  } policies[] = {{1, "global"}, {kStriped, "striped"}};

  for (const auto& [b, name] : backends) {
    for (const auto& [stripes, pname] : policies) {
      char table[96];
      std::snprintf(table, sizeof table, "%s %s", name, pname);
      std::printf("\n%s\n", table);
      std::printf("  %3s %10s %10s %14s %16s %10s %10s\n", "T", "Mops",
                  "holdMops", "lock_sub_pct", "fallbacks/Mop", "p50_us",
                  "p99_us");
      for (int t : threads) {
        const workload::Config cfg =
            workload::Config::write_heavy().with(keys, 0.99, t,
                                                 bench::bench_ms());
        const Cell cell = run_cell(b, stripes, cfg, ubits);
        const htm::TxStats& s = cell.stats;
        const double lock_sub_pct =
            s.total_aborts() > 0
                ? 100.0 * static_cast<double>(s.aborts_lock_subscription) /
                      static_cast<double>(s.total_aborts())
                : 0;
        const double fb_per_mop =
            cell.mops > 0 ? static_cast<double>(s.fallback_acquisitions) /
                                (cell.mops * 1e6) * 1e6
                          : 0;
        bench::record_row(table, "mops", t, cell.mops, "Mops");
        bench::record_row(table, "hold_mops", t, cell.hold_mops, "Mops");
        bench::record_row(table, "lock_sub_share", t, lock_sub_pct, "%");
        bench::record_row(table, "fallbacks_per_mop", t, fb_per_mop, "1/Mop");
        bench::record_row(table, "p50", t, cell.p50_us, "us/batch");
        bench::record_row(table, "p99", t, cell.p99_us, "us/batch");
        std::printf("  %3d %10.3f %10.3f %13.1f%% %16.1f %10.2f %10.2f\n", t,
                    cell.mops, cell.hold_mops, lock_sub_pct, fb_per_mop,
                    cell.p50_us, cell.p99_us);
        std::fflush(stdout);
        if (t == max_t) {
          // Absolute counts at the hottest cell — CI's jq assert
          // compares striped vs global per structure.
          char label[96];
          std::snprintf(label, sizeof label, "%s %s lock_sub", name, pname);
          bench::record_row("hotkey", label, t,
                            static_cast<double>(s.aborts_lock_subscription),
                            "aborts");
          std::snprintf(label, sizeof label, "%s %s fallbacks", name, pname);
          bench::record_row("hotkey", label, t,
                            static_cast<double>(s.fallback_acquisitions),
                            "acq");
          std::snprintf(label, sizeof label, "%s %s stripes_acquired", name,
                        pname);
          bench::record_row("hotkey", label, t,
                            static_cast<double>(s.fallback_stripes_acquired),
                            "stripes");
          // Deterministic probe — the schedule-free CI assert target.
          std::snprintf(label, sizeof label, "%s %s probe_lock_sub", name,
                        pname);
          bench::record_row("hotkey", label, t,
                            static_cast<double>(cell.probe_lock_sub),
                            "aborts");
          std::snprintf(label, sizeof label, "%s %s probe_total", name,
                        pname);
          bench::record_row("hotkey", label, t,
                            static_cast<double>(cell.probe_total), "probes");
          std::printf("      probe: %llu/%llu subscription aborts\n",
                      static_cast<unsigned long long>(cell.probe_lock_sub),
                      static_cast<unsigned long long>(cell.probe_total));
        }
      }
    }
  }

  // Fig. 10 overload-cell rerun: admission shedding under both policies.
  std::printf("\nfig10 overload rerun (bd-spash shards, open loop, "
              "queue=8)\n");
  const workload::Config over_cfg =
      workload::Config::ycsb_a().with(keys, 0.99, 8, bench::bench_ms());
  for (const auto& [stripes, pname] : policies) {
    const Cell over = run_overload(stripes, over_cfg, ubits);
    char label[64];
    std::snprintf(label, sizeof label, "%s shed_rate", pname);
    bench::record_row("fig10 overload rerun", label, 8, over.shed_pct, "%");
    std::snprintf(label, sizeof label, "%s goodput", pname);
    bench::record_row("fig10 overload rerun", label, 8, over.mops, "Mops");
    std::printf("  %-8s shed %5.1f%%  goodput %8.3f Mops/s\n", pname,
                over.shed_pct, over.mops);
  }

  return bench::finish();
}
