// Fig. 4 — Single-thread throughput of multi-word atomic-update
// implementations over an array of one million cache-line-aligned NVM
// slots, updating 2, 4 or 8 randomly selected locations per operation:
//
//   Mw-WR      plain stores, no synchronization or persistence (ceiling)
//   HTM-MwCAS  one hardware transaction per operation
//   MwCAS      volatile descriptor protocol (no persists)
//   PMwCAS     persistent descriptor protocol (the full strict-DL cost)
//
// Expected shape (paper): HTM-MwCAS costs little over Mw-WR; MwCAS is
// slower (descriptor overhead); PMwCAS drops by over an order of
// magnitude (persist instructions + invalidation-on-flush penalties).
#include <memory>

#include "alloc/pallocator.hpp"
#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "sync/htm_mwcas.hpp"
#include "sync/mwcas.hpp"
#include "sync/pmwcas.hpp"

using namespace bdhtm;

namespace {

constexpr std::uint64_t kStep = 8;  // values stay multiples of 8: all
                                    // protocol tag bits remain clear

template <typename OpFn>
double run_timed(OpFn&& op) {
  const std::uint64_t budget_ns = bench::bench_ms() * 1'000'000ull;
  const std::uint64_t t0 = now_ns();
  std::uint64_t ops = 0;
  while (now_ns() - t0 < budget_ns) {
    for (int i = 0; i < 64; ++i) op();
    ops += 64;
  }
  return ops / (static_cast<double>(now_ns() - t0) / 1e9) / 1e6;
}

struct Slots {
  explicit Slots(std::size_t n, bool modeled)
      : n_slots(n),
        dev(modeled ? bench::nvm_cfg(n * kCacheLineSize + (64ull << 20))
                    : nvm::DeviceConfig{n * kCacheLineSize + (64ull << 20)}),
        pa(dev) {
    base = static_cast<std::byte*>(pa.alloc(n * kCacheLineSize));
  }
  std::atomic<std::uint64_t>* at(std::size_t i) {
    return reinterpret_cast<std::atomic<std::uint64_t>*>(
        base + i * kCacheLineSize);
  }
  std::uint64_t* raw(std::size_t i) {
    return reinterpret_cast<std::uint64_t*>(base + i * kCacheLineSize);
  }
  std::size_t n_slots;
  nvm::Device dev;
  alloc::PAllocator pa;
  std::byte* base;
};

void pick(Rng& rng, std::size_t n_slots, int n, std::size_t* idx) {
  for (int i = 0; i < n; ++i) {
  again:
    idx[i] = rng.next_below(n_slots);
    for (int j = 0; j < i; ++j) {
      if (idx[j] == idx[i]) goto again;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig4_mwcas", argc, argv);
  bench::set_structure("htm-mwcas");
  bench::set_structure("pmwcas");
  const std::size_t n_slots =
      static_cast<std::size_t>(env_int("BDHTM_MWCAS_SLOTS", 1 << 18));
  bench::print_header(
      "Fig. 4: single-thread MwCAS-variant throughput (Mops/s)",
      "paper: 1M cache-line slots; scaled default 2^18 slots "
      "(BDHTM_MWCAS_SLOTS)");
  std::printf("%-12s %10s %10s %10s\n", "impl", "N=2", "N=4", "N=8");

  for (const char* impl : {"Mw-WR", "HTM-MwCAS", "MwCAS", "PMwCAS"}) {
    std::printf("%-12s", impl);
    for (int n : {2, 4, 8}) {
      Slots s(n_slots, std::string_view(impl) == "PMwCAS");
      Rng rng(7 + n);
      std::size_t idx[8];
      double mops = 0;
      if (std::string_view(impl) == "Mw-WR") {
        mops = run_timed([&] {
          pick(rng, s.n_slots, n, idx);
          for (int i = 0; i < n; ++i) {
            *s.raw(idx[i]) += kStep;  // plain unsynchronized writes
          }
        });
      } else if (std::string_view(impl) == "HTM-MwCAS") {
        sync::HTMMwCAS mw;
        mops = run_timed([&] {
          pick(rng, s.n_slots, n, idx);
          sync::HTMMwCAS::Word w[8];
          for (int i = 0; i < n; ++i) {
            const std::uint64_t old = mw.read(s.raw(idx[i]));
            w[i] = {s.raw(idx[i]), old, old + kStep};
          }
          mw.execute(w, n);
        });
      } else if (std::string_view(impl) == "MwCAS") {
        mops = run_timed([&] {
          pick(rng, s.n_slots, n, idx);
          sync::MwCAS::Word w[8];
          for (int i = 0; i < n; ++i) {
            const std::uint64_t old = sync::MwCAS::read(s.at(idx[i]));
            w[i] = {s.at(idx[i]), old, old + kStep};
          }
          sync::MwCAS::execute(w, n);
        });
      } else {  // PMwCAS
        sync::PMwCAS pm(s.dev, s.pa);
        mops = run_timed([&] {
          pick(rng, s.n_slots, n, idx);
          sync::PMwCAS::Word w[8];
          for (int i = 0; i < n; ++i) {
            const std::uint64_t old = pm.read(s.at(idx[i]));
            w[i] = {s.at(idx[i]), old, old + kStep};
          }
          pm.execute(w, n);
        });
      }
      char label[16];
      std::snprintf(label, sizeof label, "N=%d", n);
      bench::record_row(impl, label, 1, mops, "Mops");
      std::printf(" %10.3f", mops);
    }
    std::printf("\n");
  }
  return bench::finish();
}
