// Fig. 1 — Throughput of transient (HTM-vEB) and buffered durable
// (PHTM-vEB) van Emde Boas trees, write-heavy workload, uniform and
// Zipfian(0.99) key distributions, across thread counts.
//
// Paper scale: universe 2^26, 40-core Optane testbed. Default here:
// universe 2^20 on the simulated device (BDHTM_UNIVERSE_BITS=26 restores
// the paper's universe). Expected shape: PHTM-vEB within ~2-3x of
// HTM-vEB (the cost of NVM block management), both scaling with threads.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "veb/htm_veb.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

workload::Config base_cfg(int ubits, double theta, int threads) {
  workload::Config cfg = workload::Config::write_heavy();
  cfg.key_space = std::uint64_t{1} << ubits;
  cfg.zipf_theta = theta;
  cfg.threads = threads;
  cfg.duration_ms = bench::bench_ms();
  return cfg;
}

double run_htm_veb(int ubits, double theta, int threads) {
  veb::HTMvEB tree(ubits);
  auto cfg = base_cfg(ubits, theta, threads);
  workload::prefill(tree, cfg);
  return workload::run_workload(tree, cfg).mops();
}

double run_phtm_veb(int ubits, double theta, int threads) {
  const std::size_t cap =
      std::max<std::size_t>(512ull << 20, (std::size_t{1} << ubits) * 96);
  nvm::Device dev(bench::nvm_cfg(cap));
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 50'000;  // the paper's 50 ms default
  epoch::EpochSys es(pa, ecfg);
  veb::PHTMvEB tree(es, ubits);
  auto cfg = base_cfg(ubits, theta, threads);
  workload::prefill(tree, cfg);
  const double mops = workload::run_workload(tree, cfg).mops();
  bench::note_epoch_stats(es.stats());
  return mops;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig1_veb_persistence_cost", argc, argv);
  bench::set_structure("phtm-veb");
  bench::set_structure("htm-veb");
  const int ubits = bench::universe_bits(20);
  const auto threads = bench::thread_counts();
  bench::print_header(
      "Fig. 1: HTM-vEB vs PHTM-vEB throughput (Mops/s), write-heavy",
      "paper: universe 2^26, Zipf 0.99; scaled default universe 2^20");

  for (const auto& [name, theta] :
       {std::pair{"(a) uniform", 0.0}, std::pair{"(b) zipfian 0.99", 0.99}}) {
    std::printf("\n%s\n", name);
    bench::print_row_header("series", threads);
    std::printf("%-22s", "HTM-vEB");
    for (int t : threads) {
      const double mops = run_htm_veb(ubits, theta, t);
      bench::record_row(name, "HTM-vEB", t, mops, "Mops");
      std::printf("  %-10.3f", mops);
    }
    std::printf("\n%-22s", "PHTM-vEB");
    for (int t : threads) {
      const double mops = run_phtm_veb(ubits, theta, t);
      bench::record_row(name, "PHTM-vEB", t, mops, "Mops");
      std::printf("  %-10.3f", mops);
    }
    std::printf("\n");
  }
  return bench::finish();
}
