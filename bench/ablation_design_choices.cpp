// Ablations for the design choices DESIGN.md §6 calls out (not a paper
// exhibit; supports the §5 discussion and the §4.3 routing decision).
//
// A. BD-Spash persist routing: hotspot-hybrid (the paper's design) vs
//    buffer-everything vs persist-everything-immediately. The paper
//    argues the hybrid matters for large cold values; for small values
//    buffering alone should win, and immediate persistence should
//    approach strict-DL cost.
// B. Listing-1 preallocation reuse: the thread-local `new_blk` avoids an
//    allocator round trip whenever an operation updates in place. This
//    ablation measures the allocation rate with and without in-place
//    opportunities (Zipfian vs uniform updates) to expose the reuse
//    saving the paper's lines 9-12 encode.
// C. HTM capacity: PHTM-vEB operations enclose a whole doubly-log
//    traversal; shrinking the engine's speculative write capacity forces
//    capacity aborts and fallback serialization (paper §2.2's
//    "best-effort" caveat).
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "hash/bd_spash.hpp"
#include "htm/engine.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

double run_bdspash(hash::BDSpash::PersistRouting routing,
                   std::size_t block_bytes, double theta) {
  nvm::Device dev(bench::nvm_cfg(768ull << 20));
  alloc::PAllocator pa(dev);
  epoch::EpochSys es(pa);
  hash::BDSpash m(es, 4, block_bytes, routing);
  workload::Config cfg = workload::Config::write_heavy();
  cfg.key_space = 1 << 16;
  cfg.zipf_theta = theta;
  cfg.threads = 1;
  cfg.duration_ms = bench::bench_ms();
  workload::prefill(m, cfg);
  const double mops = workload::run_workload(m, cfg).mops();
  bench::note_epoch_stats(es.stats());
  return mops;
}

void ablation_routing() {
  std::printf("\nA. BD-Spash persist routing (Mops/s, 1 thread, "
              "write-heavy)\n");
  std::printf("%-16s %14s %14s\n", "routing", "16B blocks",
              "256B blocks");
  using R = hash::BDSpash::PersistRouting;
  for (const auto& [name, r] :
       {std::pair{"hybrid", R::kHybrid}, std::pair{"all-track", R::kAllTrack},
        std::pair{"all-immediate", R::kAllImmediate}}) {
    std::printf("%-16s", name);
    const double small = run_bdspash(r, 16, 0.99);
    const double large = run_bdspash(r, 256, 0.99);
    bench::record_row("A. persist routing, 16B blocks", name, 1, small,
                      "Mops");
    bench::record_row("A. persist routing, 256B blocks", name, 1, large,
                      "Mops");
    std::printf(" %14.3f", small);
    std::printf(" %14.3f", large);
    std::printf("\n");
    std::fflush(stdout);
  }
}

void ablation_prealloc() {
  std::printf("\nB. Listing-1 preallocation reuse (PHTM-vEB, 1 thread)\n");
  std::printf("%-16s %12s %16s %16s\n", "distribution", "Mops",
              "NVM allocs/op", "in-place ratio");
  for (const auto& [name, theta] :
       {std::pair{"uniform", 0.0}, std::pair{"zipf 0.99", 0.99}}) {
    nvm::Device dev(bench::nvm_cfg(768ull << 20));
    alloc::PAllocator pa(dev);
    epoch::EpochSys::Config ecfg;
    ecfg.epoch_length_us = 50'000;  // long epochs: many in-place chances
    epoch::EpochSys es(pa, ecfg);
    veb::PHTMvEB tree(es, 18);
    workload::Config cfg;
    cfg.key_space = 1 << 18;
    cfg.zipf_theta = theta;
    cfg.read_pct = 0;  // pure updates maximize the reuse opportunity
    cfg.insert_pct = 100;
    cfg.remove_pct = 0;
    cfg.threads = 1;
    cfg.duration_ms = bench::bench_ms();
    workload::prefill(tree, cfg);
    const auto used0 = pa.bytes_in_use();
    const auto r = workload::run_workload(tree, cfg);
    // Blocks consumed during the run ~ allocations actually used
    // (in-place updates consume none; the preallocated block is reused).
    const double allocs_per_op =
        r.ops > 0 ? double(pa.bytes_in_use() - used0) / 64.0 / r.ops : 0;
    bench::record_row("B. prealloc reuse", name, 1, r.mops(), "Mops");
    bench::record_row("B. prealloc reuse, allocs/op", name, 1,
                      allocs_per_op, "allocs/op");
    std::printf("%-16s %12.3f %16.3f %15.1f%%\n", name, r.mops(),
                allocs_per_op, 100.0 * (1.0 - std::min(1.0, allocs_per_op)));
    std::fflush(stdout);
  }
  std::printf("(skewed updates hit blocks stamped in the current epoch "
              "and update in place,\n consuming no preallocation — the "
              "saving of Listing 1 lines 9-12)\n");
}

void ablation_capacity() {
  std::printf("\nC. HTM speculative-capacity sensitivity (PHTM-vEB, "
              "1 thread, write-heavy)\n");
  std::printf("(vEB transactions enclose a whole doubly-log traversal; "
              "their footprint is read-dominated)\n");
  std::printf("%-16s %12s %16s %16s\n", "read cap", "Mops",
              "capacity abrt%", "fallbacks");
  for (const std::size_t cap : {8192, 64, 16, 8}) {
    htm::EngineConfig ecfg;
    ecfg.read_cap_entries = cap;
    htm::configure(ecfg);
    htm::reset_stats();
    nvm::Device dev(bench::nvm_cfg(768ull << 20));
    alloc::PAllocator pa(dev);
    epoch::EpochSys es(pa);
    veb::PHTMvEB tree(es, 18);
    workload::Config cfg = workload::Config::write_heavy();
    cfg.key_space = 1 << 18;
    cfg.threads = 1;
    cfg.duration_ms = bench::bench_ms();
    workload::prefill(tree, cfg);
    htm::reset_stats();
    const auto r = workload::run_workload(tree, cfg);
    const auto s = htm::collect_stats();
    bench::note_htm_stats();
    char label[24];
    std::snprintf(label, sizeof label, "read_cap=%zu", cap);
    bench::record_row("C. HTM capacity", label, 1, r.mops(), "Mops");
    std::printf("%-16zu %12.3f %15.2f%% %16llu\n", cap, r.mops(),
                s.attempts() ? 100.0 * s.aborts_capacity / s.attempts() : 0,
                static_cast<unsigned long long>(s.fallback_acquisitions));
    std::fflush(stdout);
  }
  htm::configure(htm::EngineConfig{});
}

void ablation_coalescing() {
  std::printf("\nD. Epoch write-back coalescing (BD-Spash, 1 thread, "
              "write-heavy, zipf 0.99)\n");
  std::printf("(the step-2 pipeline merges duplicate/adjacent buffered "
              "lines before flushing;\n off = one flush per tracked "
              "range, the pre-pipeline behaviour)\n");
  std::printf("%-12s %12s %16s %14s %16s\n", "coalescing", "Mops",
              "bytes flushed", "dedup factor", "mean advance us");
  for (const bool coalesce : {false, true}) {
    nvm::Device dev(bench::nvm_cfg(768ull << 20));
    alloc::PAllocator pa(dev);
    epoch::EpochSys::Config ecfg;
    ecfg.epoch_length_us = 10'000;  // frequent transitions: many flushes
    ecfg.coalesce_flushes = coalesce;
    epoch::EpochSys es(pa, ecfg);
    hash::BDSpash m(es);
    workload::Config cfg = workload::Config::write_heavy();
    cfg.key_space = 1 << 16;
    cfg.zipf_theta = 0.99;
    cfg.threads = 1;
    cfg.duration_ms = bench::bench_ms();
    workload::prefill(m, cfg);
    const double mops = workload::run_workload(m, cfg).mops();
    const auto& s = es.stats();
    const auto epochs = s.epochs_advanced.load();
    bench::record_row("D. coalescing", coalesce ? "on" : "off", 1, mops,
                      "Mops");
    bench::record_row("D. coalescing, bytes flushed",
                      coalesce ? "on" : "off", 1,
                      static_cast<double>(s.bytes_flushed.load()), "B");
    std::printf("%-12s %12.3f %16llu %14.2f %16.1f\n",
                coalesce ? "on" : "off", mops,
                static_cast<unsigned long long>(s.bytes_flushed.load()),
                s.dedup_factor(),
                epochs ? s.advance_ns_total() / 1e3 /
                             static_cast<double>(epochs)
                       : 0.0);
    std::fflush(stdout);
    bench::note_epoch_stats(s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ablation_design_choices", argc, argv);
  bench::set_structure("phtm-veb");
  bench::set_structure("bd-spash");
  bench::print_header(
      "Ablations: BD-Spash persist routing / Listing-1 preallocation "
      "reuse / HTM capacity / write-back coalescing",
      "design-choice studies backing DESIGN.md section 6");
  ablation_routing();
  ablation_prealloc();
  ablation_capacity();
  ablation_coalescing();
  return bench::finish();
}
