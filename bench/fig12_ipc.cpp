// Fig. 12 — out-of-process serving (DESIGN.md §12): what the
// shared-memory transport costs over in-process service calls, and what
// the deadman reclaim machinery buys under a client kill storm.
//
// Table "transport" — same store configuration (BD-Spash backend,
// 2 shards, 2 workers, batched), same mixed workload, two front doors:
//
//   in-process — closed-loop submitter threads call
//                KVStore::submit/wait directly (fig10's batched shape):
//                the upper reference, no transport at all.
//   shm        — the same client count as separate PROCESSES
//                (tools/ipc_client) over the file-backed arena + futex
//                transport, one session thread each.
//
// Expected shape: shm trails in-process — each op crosses two futex
// wakeups and a session thread instead of a function call — but stays
// in the same order of magnitude; its p99 includes the server poll tick.
//
// Table "kill storm" — remote clients run the same workload while the
// driver SIGKILLs one every storm tick and immediately respawns a
// replacement. Reported: surviving goodput (acked ops from every log,
// including each victim's acked prefix), kills delivered, sessions
// reclaimed, published-but-unexecuted requests shed, orphaned
// responses, and a wedged_workers probe — after the storm the driver
// submits one in-process request; 0 means every shard worker still
// drains (the never-wedge property, the row CI asserts to be exactly 0).
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc/pallocator.hpp"
#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "ipc/server.hpp"
#include "nvm/device.hpp"
#include "obs/metrics.hpp"
#include "svc/kvstore.hpp"

using namespace bdhtm;

namespace {

constexpr int kClients = 4;
constexpr std::size_t kFlight = 8;
constexpr std::uint64_t kKeySpace = 1 << 14;

struct World {
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<epoch::EpochSys> es;
};

World make_world() {
  World w;
  w.dev = std::make_unique<nvm::Device>(bench::nvm_cfg(512ull << 20));
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 50'000;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
  return w;
}

/// Store sized for one in-process probe client (id 0) plus `sessions`
/// transport sessions (ids 1..sessions).
svc::KVStoreConfig store_cfg(int sessions) {
  svc::KVStoreConfig cfg;
  cfg.backend = svc::Backend::kHash;
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.clients = 1 + sessions;
  cfg.queue_capacity = 64;
  cfg.max_batch = 16;
  cfg.shard_opt.hash_initial_depth = 4;
  return cfg;
}

std::string make_dir() {
  char tmpl[] = "/tmp/bdhtm-fig12-XXXXXX";
  const char* d = mkdtemp(tmpl);
  return d != nullptr ? d : "";
}

void remove_dir(const std::string& dir) {
  // Arenas of gracefully-exited clients are already unlinked; reclaimed
  // and killed clients' files go with the server teardown, so only the
  // logs and the directory itself remain.
  std::string cmd = "rm -rf " + dir;
  (void)std::system(cmd.c_str());
}

pid_t spawn_client(const std::string& bin,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(bin.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

struct ClientSummary {
  std::uint64_t acked = 0;  // counted A lines (survives SIGKILL mid-run)
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  bool has_summary = false;
};

ClientSummary parse_log(const std::string& path) {
  ClientSummary s;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return s;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == 'A') {
      ++s.acked;
    } else if (line[0] == 'R') {
      std::uint64_t ops = 0, errs = 0, noslot = 0;
      if (std::sscanf(line,
                      "R ops=%llu errs=%llu noslot=%llu p50_ns=%llu "
                      "p99_ns=%llu",
                      reinterpret_cast<unsigned long long*>(&ops),
                      reinterpret_cast<unsigned long long*>(&errs),
                      reinterpret_cast<unsigned long long*>(&noslot),
                      reinterpret_cast<unsigned long long*>(&s.p50_ns),
                      reinterpret_cast<unsigned long long*>(&s.p99_ns)) ==
          5) {
        s.has_summary = true;
      }
    }
  }
  std::fclose(f);
  return s;
}

struct Cell {
  double mops = 0;
  double p50_us = 0, p99_us = 0;
};

/// Per-cell persistence-lag columns. The epoch advancer records one
/// `epoch.persistence_lag_us` sample per published epoch into the
/// process-global registry (DESIGN.md §13): snapshot the histogram
/// after the cell's world has closed, emit p50/p99 rows, and reset it
/// so the next cell's distribution starts clean. The final cell skips
/// the reset so the registry dump in BENCH_fig12_ipc.json still
/// carries a non-empty lag histogram.
void record_lag_rows(const char* table, const std::string& prefix,
                     bool reset) {
  auto& h = obs::Registry::global().histogram("epoch.persistence_lag_us");
  const obs::HistogramSnapshot s = h.snapshot();
  const double p50 = s.quantile(0.50);
  const double p99 = s.quantile(0.99);
  std::printf("  %-11s persistence lag  p50 %7.0f us  p99 %7.0f us  "
              "(%llu epochs)\n",
              prefix.c_str(), p50, p99,
              static_cast<unsigned long long>(s.count));
  bench::record_row(table, prefix + " plag p50", kClients, p50, "us");
  bench::record_row(table, prefix + " plag p99", kClients, p99, "us");
  if (reset) h.reset();
}

// ---- In-process reference ----

Cell run_in_process(std::uint64_t ms) {
  World w = make_world();
  svc::KVStore store(*w.es, store_cfg(kClients));
  std::atomic<bool> start{false}, stop{false};
  std::vector<std::uint64_t> ops_done(kClients, 0);
  std::vector<std::vector<std::uint64_t>> lat(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t rng = splitmix64(0xf16'12 + c);
      std::vector<svc::Request> flight(kFlight);
      auto& l = lat[c];
      l.reserve(1 << 16);
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& r : flight) {
          rng = splitmix64(rng);
          const std::uint64_t k = rng % kKeySpace;
          r = (rng >> 32) % 2 == 0 ? svc::Request::get(k)
                                   : svc::Request::put(k, k + 1);
          store.submit(1 + c, &r);
        }
        for (auto& r : flight) {
          store.wait(&r);
          l.push_back(now_ns() - r.t_submit_ns);
        }
        ops_done[c] += kFlight;
      }
    });
  }
  const std::uint64_t t0 = now_ns();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  store.close();
  bench::note_epoch_stats(w.es->stats());

  Cell cell;
  std::uint64_t ops = 0;
  std::vector<std::uint64_t> all;
  for (int c = 0; c < kClients; ++c) {
    ops += ops_done[c];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  cell.mops = secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  std::sort(all.begin(), all.end());
  auto q = [&](double f) {
    return all.empty() ? 0.0
                       : static_cast<double>(all[std::min(
                             all.size() - 1,
                             static_cast<std::size_t>(
                                 f * static_cast<double>(all.size())))]) /
                             1e3;
  };
  cell.p50_us = q(0.50);
  cell.p99_us = q(0.99);
  return cell;
}

// ---- Remote (shm transport) cells ----

std::vector<std::string> client_args(const std::string& dir,
                                     const std::string& log,
                                     std::uint64_t ms, int seed) {
  return {
      "--dir=" + dir,
      "--log=" + log,
      "--slots=16",
      "--flight=" + std::to_string(kFlight),
      "--ms=" + std::to_string(ms),
      "--mode=mixed",
      "--key-base=0",
      "--key-count=" + std::to_string(kKeySpace),
      "--seed=" + std::to_string(seed),
  };
}

Cell run_shm(std::uint64_t ms) {
  World w = make_world();
  svc::KVStore store(*w.es, store_cfg(kClients));
  const std::string dir = make_dir();
  ipc::ShmServer::Config scfg;
  scfg.dir = dir;
  scfg.max_sessions = kClients;
  scfg.kv_client_base = 1;
  auto server = std::make_unique<ipc::ShmServer>(store, scfg);

  std::vector<pid_t> pids;
  std::vector<std::string> logs;
  for (int c = 0; c < kClients; ++c) {
    logs.push_back(dir + "/cli" + std::to_string(c) + ".log");
    pids.push_back(
        spawn_client(BDHTM_IPC_CLIENT_BIN, client_args(dir, logs[c], ms, c)));
  }
  const std::uint64_t t0 = now_ns();
  for (pid_t p : pids) {
    int st = 0;
    waitpid(p, &st, 0);
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  server->close();
  store.close();
  bench::note_epoch_stats(w.es->stats());

  Cell cell;
  std::uint64_t ops = 0;
  double p50 = 0, p99 = 0;
  int with_summary = 0;
  for (const auto& l : logs) {
    const ClientSummary s = parse_log(l);
    ops += s.acked;
    if (s.has_summary) {
      ++with_summary;
      p50 += static_cast<double>(s.p50_ns) / 1e3;
      p99 = std::max(p99, static_cast<double>(s.p99_ns) / 1e3);
    }
  }
  cell.mops = secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  cell.p50_us = with_summary > 0 ? p50 / with_summary : 0;
  cell.p99_us = p99;
  remove_dir(dir);
  return cell;
}

struct StormResult {
  double goodput_mops = 0;
  std::uint64_t kills = 0;
  ipc::ShmServer::Stats stats{};
  int wedged_workers = 0;
};

StormResult run_kill_storm(std::uint64_t ms) {
  World w = make_world();
  // One spare session beyond the live client count so a respawned
  // replacement can connect while its predecessor's slot is still
  // being reclaimed.
  svc::KVStore store(*w.es, store_cfg(kClients + 1));
  const std::string dir = make_dir();
  ipc::ShmServer::Config scfg;
  scfg.dir = dir;
  scfg.max_sessions = kClients + 1;
  scfg.kv_client_base = 1;
  scfg.poll_us = 1000;
  // Generous lease: kills are detected via ESRCH, not lease expiry, so
  // the reclaim latency row reflects the pid probe, not the lease.
  scfg.lease_us = 60'000'000;
  auto server = std::make_unique<ipc::ShmServer>(store, scfg);

  std::vector<pid_t> pids(kClients, -1);
  std::vector<std::string> logs;
  int next_log = 0;
  auto launch = [&](int slot) {
    logs.push_back(dir + "/storm" + std::to_string(next_log) + ".log");
    pids[slot] = spawn_client(
        BDHTM_IPC_CLIENT_BIN,
        client_args(dir, logs.back(), ms, 100 + next_log));
    ++next_log;
  };
  for (int c = 0; c < kClients; ++c) launch(c);

  const std::uint64_t t0 = now_ns();
  const std::uint64_t deadline = t0 + ms * 1'000'000ULL;
  const std::uint64_t tick_ns = std::max<std::uint64_t>(ms / 8, 5) * 1'000'000;
  std::uint64_t kills = 0;
  std::uint64_t victim = 0;
  while (now_ns() + tick_ns < deadline) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(tick_ns));
    const int slot = static_cast<int>(victim++ % kClients);
    if (pids[slot] > 0 && kill(pids[slot], SIGKILL) == 0) {
      ++kills;
      int st = 0;
      waitpid(pids[slot], &st, 0);
      launch(slot);  // respawn: the storm keeps client count constant
    }
  }
  for (pid_t p : pids) {
    if (p > 0) {
      int st = 0;
      waitpid(p, &st, 0);
    }
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;

  // Reclaims lag kills by the pid-probe poll; give the deadman a
  // bounded window to finish before sampling the counters.
  const std::uint64_t reclaim_deadline = now_ns() + 5'000'000'000ULL;
  while (server->stats().reclaims < kills && now_ns() < reclaim_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  StormResult res;
  res.kills = kills;
  res.stats = server->stats();

  // The never-wedge probe: one in-process request through the same
  // store the storm hammered. A wedged shard worker would park this
  // wait forever; CI runs the bench under `timeout`, so a wedge fails
  // the lane rather than hanging it.
  svc::Request probe = svc::Request::put(0xdead, 0xbeef);
  res.wedged_workers = 1;
  if (store.submit(0, &probe)) {
    store.wait(&probe);
    if (probe.status == svc::Status::kOk) res.wedged_workers = 0;
  }

  server->close();
  store.close();
  bench::note_epoch_stats(w.es->stats());

  std::uint64_t acked = 0;
  for (const auto& l : logs) acked += parse_log(l).acked;
  res.goodput_mops =
      secs > 0 ? static_cast<double>(acked) / secs / 1e6 : 0;
  remove_dir(dir);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig12_ipc", argc, argv);
  bench::set_structure("bd-spash");
  const std::uint64_t ms = bench::bench_ms();

  bench::print_header(
      "Fig 12 — shared-memory transport vs in-process service, and "
      "goodput under a client kill storm",
      "BDHTM_BENCH_MS scales every cell");

  const Cell inproc = run_in_process(ms);
  std::printf("transport=in-process  %7.3f Mops  p50 %7.1f us  p99 %7.1f us\n",
              inproc.mops, inproc.p50_us, inproc.p99_us);
  bench::record_row("transport", "in-process", kClients, inproc.mops, "Mops");
  bench::record_row("transport", "in-process p50", kClients, inproc.p50_us,
                    "us");
  bench::record_row("transport", "in-process p99", kClients, inproc.p99_us,
                    "us");
  record_lag_rows("transport", "in-process", /*reset=*/true);

  const Cell shm = run_shm(ms);
  std::printf("transport=shm         %7.3f Mops  p50 %7.1f us  p99 %7.1f us\n",
              shm.mops, shm.p50_us, shm.p99_us);
  bench::record_row("transport", "shm", kClients, shm.mops, "Mops");
  bench::record_row("transport", "shm p50", kClients, shm.p50_us, "us");
  bench::record_row("transport", "shm p99", kClients, shm.p99_us, "us");
  record_lag_rows("transport", "shm", /*reset=*/true);

  const StormResult storm = run_kill_storm(ms);
  std::printf(
      "kill-storm: goodput %7.3f Mops  kills=%llu reclaims=%llu "
      "dead_shed=%llu orphans=%llu wedged_workers=%d\n",
      storm.goodput_mops, static_cast<unsigned long long>(storm.kills),
      static_cast<unsigned long long>(storm.stats.reclaims),
      static_cast<unsigned long long>(storm.stats.dead_shed),
      static_cast<unsigned long long>(storm.stats.orphans),
      storm.wedged_workers);
  bench::record_row("kill storm", "goodput", kClients, storm.goodput_mops,
                    "Mops");
  bench::record_row("kill storm", "kills", kClients,
                    static_cast<double>(storm.kills), "count");
  bench::record_row("kill storm", "reclaims", kClients,
                    static_cast<double>(storm.stats.reclaims), "count");
  bench::record_row("kill storm", "dead_shed", kClients,
                    static_cast<double>(storm.stats.dead_shed), "count");
  bench::record_row("kill storm", "orphans", kClients,
                    static_cast<double>(storm.stats.orphans), "count");
  bench::record_row("kill storm", "wedged_workers", kClients,
                    static_cast<double>(storm.wedged_workers), "count");
  record_lag_rows("kill storm", "storm", /*reset=*/false);

  return bench::finish();
}
