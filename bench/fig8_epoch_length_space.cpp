// Fig. 8 — NVM space consumption of PHTM-vEB as a function of epoch
// length, uniform vs Zipfian workloads, single thread, 50/50
// insert/remove.
//
// Expected shape (paper): uniform workloads consume more NVM than
// Zipfian (more out-of-place updates across distinct keys); longer
// epochs consume more (stale copies and pending deletions are retained
// longer), with only modest variation outside the extreme lengths.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

double run_cell_mib(int ubits, double theta, std::uint64_t epoch_us) {
  const std::size_t cap =
      std::max<std::size_t>(768ull << 20, (std::size_t{1} << ubits) * 256);
  nvm::Device dev(bench::nvm_cfg(cap));
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = epoch_us;
  epoch::EpochSys es(pa, ecfg);
  veb::PHTMvEB tree(es, ubits);

  workload::Config cfg;
  cfg.key_space = std::uint64_t{1} << ubits;
  cfg.zipf_theta = theta;
  cfg.read_pct = 0;  // 50% insert / 50% remove (paper)
  cfg.insert_pct = 50;
  cfg.remove_pct = 50;
  cfg.threads = 1;
  cfg.duration_ms = bench::bench_ms();
  workload::prefill(tree, cfg);
  workload::run_workload(tree, cfg);
  bench::note_epoch_stats(es.stats());
  // Peak-ish footprint during the run: measure before settling.
  return tree.nvm_bytes() / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig8_epoch_length_space", argc, argv);
  bench::set_structure("phtm-veb");
  const int ubits = bench::universe_bits(18);  // paper: 2^24 key space
  bench::print_header(
      "Fig. 8: PHTM-vEB NVM space (MiB) vs epoch length, 1 thread, "
      "50/50 insert/remove",
      "paper: key space 2^24, epoch 1us..10s; scaled default 2^18, "
      "sweep 10us..1s");

  const std::uint64_t epochs_us[] = {10, 100, 1'000, 10'000, 100'000,
                                     1'000'000};
  std::printf("%-16s", "epoch length");
  for (auto e : epochs_us) {
    if (e < 1000) {
      std::printf(" %7lluus", static_cast<unsigned long long>(e));
    } else if (e < 1'000'000) {
      std::printf(" %7llums", static_cast<unsigned long long>(e / 1000));
    } else {
      std::printf(" %8llus", static_cast<unsigned long long>(e / 1'000'000));
    }
  }
  std::printf("\n");

  for (const auto& [name, theta] :
       {std::pair{"uniform", 0.0}, std::pair{"zipf 0.99", 0.99}}) {
    std::printf("%-16s", name);
    for (auto e : epochs_us) {
      const double mib = run_cell_mib(ubits, theta, e);
      char label[24];
      std::snprintf(label, sizeof label, "epoch_us=%llu",
                    static_cast<unsigned long long>(e));
      bench::record_row(name, label, 1, mib, "MiB");
      std::printf(" %9.1f", mib);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return bench::finish();
}
