// §5.2 — Recovery study: time to scan the NVM heap and rebuild the DRAM
// index after a crash, for PHTM-vEB, BDL-Skiplist and BD-Spash, with 1
// and with several threads.
//
// Expected shape (paper, 10M records / 500 MiB): heap scan is fast
// (sequential bandwidth); rebuild dominates and parallelizes well; the
// skiplist rebuild is the slowest (log-depth reinsertions), the hash
// table the fastest.
#include <memory>

#include "bench/bench_common.hpp"
#include "common/spin.hpp"
#include "epoch/epoch_sys.hpp"
#include "hash/bd_spash.hpp"
#include "skiplist/bdl_skiplist.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

struct World {
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<epoch::EpochSys> es;
};

World fresh_world(std::size_t cap) {
  World w;
  // Recovery measures scan+rebuild cost; disable the per-access latency
  // model so numbers reflect algorithmic work (enable for media-bound
  // estimates).
  nvm::DeviceConfig cfg;
  cfg.capacity = cap;
  w.dev = std::make_unique<nvm::Device>(cfg);
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 10'000;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
  return w;
}

void reattach(World& w) {
  w.es.reset();
  w.dev->simulate_crash();
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev,
                                             alloc::PAllocator::Mode::kAttach);
  epoch::EpochSys::Config ecfg;
  ecfg.start_advancer = false;
  ecfg.attach = true;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
}

template <typename MakeTree, typename Fill, typename Recover>
void study(const char* name, std::size_t cap, MakeTree&& make, Fill&& fill,
           Recover&& recover) {
  for (int threads : {1, static_cast<int>(bench::thread_counts().back())}) {
    World w = fresh_world(cap);
    {
      auto structure = make(*w.es);
      fill(*structure);
      w.es->persist_all();
      bench::note_epoch_stats(w.es->stats());
    }
    reattach(w);
    const std::uint64_t t0 = now_ns();
    auto structure = make(*w.es);
    const std::size_t n = recover(*structure, threads);
    const std::uint64_t t1 = now_ns();
    std::printf("%-14s threads=%-2d records=%-9zu recovery=%8.1f ms\n",
                name, threads, n, (t1 - t0) / 1e6);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const std::uint64_t records = env_int("BDHTM_RECOVERY_RECORDS", 400'000);
  const int ubits = 64 - __builtin_clzll(records * 2 - 1);
  const std::size_t cap =
      std::max<std::size_t>(768ull << 20, records * 512);
  bench::print_header(
      "Sec. 5.2: post-crash recovery time (heap scan + index rebuild)",
      "paper: 10M records / 500 MiB heap; scaled default 400k records "
      "(BDHTM_RECOVERY_RECORDS)");

  const auto fill_n = [&](auto& s) {
    for (std::uint64_t i = 0; i < records; ++i) {
      s.insert((i * 0x9e3779b97f4a7c15ULL) % (std::uint64_t{1} << ubits),
               i);
    }
  };

  study(
      "PHTM-vEB", cap,
      [&](epoch::EpochSys& es) {
        return std::make_unique<veb::PHTMvEB>(es, ubits);
      },
      fill_n,
      [](veb::PHTMvEB& t, int threads) { return t.recover(threads); });

  study(
      "BDL-Skiplist", cap,
      [&](epoch::EpochSys& es) {
        return std::make_unique<skiplist::BDLSkiplist>(es);
      },
      fill_n,
      [](skiplist::BDLSkiplist& t, int threads) {
        return t.recover(threads);
      });

  study(
      "BD-Spash", cap,
      [&](epoch::EpochSys& es) {
        return std::make_unique<hash::BDSpash>(es);
      },
      fill_n,
      [](hash::BDSpash& t, int threads) { return t.recover(threads); });

  bench::print_epoch_stats_summary();
  return 0;
}
