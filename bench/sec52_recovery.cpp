// §5.2 — Recovery study: time to scan the NVM heap and rebuild the DRAM
// index after a crash, for PHTM-vEB, BDL-Skiplist and BD-Spash, with 1
// and with several threads.
//
// Expected shape (paper, 10M records / 500 MiB): heap scan is fast
// (sequential bandwidth); rebuild dominates and parallelizes well; the
// skiplist rebuild is the slowest (log-depth reinsertions), the hash
// table the fastest.
#include <memory>

#include "bench/bench_common.hpp"
#include "common/spin.hpp"
#include "epoch/epoch_sys.hpp"
#include "hash/bd_spash.hpp"
#include "skiplist/bdl_skiplist.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

struct World {
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<epoch::EpochSys> es;
};

World fresh_world(std::size_t cap) {
  World w;
  // Recovery measures scan+rebuild cost; disable the per-access latency
  // model so numbers reflect algorithmic work (enable for media-bound
  // estimates).
  nvm::DeviceConfig cfg;
  cfg.capacity = cap;
  w.dev = std::make_unique<nvm::Device>(cfg);
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 10'000;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
  return w;
}

void reattach(World& w) {
  w.es.reset();
  w.dev->simulate_crash();
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev,
                                             alloc::PAllocator::Mode::kAttach);
  epoch::EpochSys::Config ecfg;
  ecfg.start_advancer = false;
  ecfg.attach = true;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
}

template <typename MakeTree, typename Fill, typename Recover>
void study(const char* name, std::size_t cap, MakeTree&& make, Fill&& fill,
           Recover&& recover) {
  for (int threads : {1, static_cast<int>(bench::thread_counts().back())}) {
    World w = fresh_world(cap);
    {
      auto structure = make(*w.es);
      fill(*structure);
      w.es->persist_all();
      bench::note_epoch_stats(w.es->stats());
    }
    reattach(w);
    const std::uint64_t t0 = now_ns();
    auto structure = make(*w.es);
    const std::size_t n = recover(*structure, threads);
    const std::uint64_t t1 = now_ns();
    bench::record_row(name, "recovery_ms", threads, (t1 - t0) / 1e6, "ms");
    bench::record_row(name, "records", threads, static_cast<double>(n),
                      "records");
    std::printf("%-14s threads=%-2d records=%-9zu recovery=%8.1f ms\n",
                name, threads, n, (t1 - t0) / 1e6);
    std::fflush(stdout);
  }
}

// Recovery under media corruption (DESIGN.md §5, "Corruption model"):
// drop a fraction of the media lines ever written, then time the
// hardened attach + recovery scan and report how much data the
// quarantine machinery sacrificed to keep the scan safe. BD-Spash is the
// subject: its recovery tolerates arbitrary surviving keys (a corrupted
// payload key would be out of range for the vEB's fixed universe).
void corruption_sweep(std::uint64_t records, int ubits, std::size_t cap) {
  std::printf("\nrecovery under corruption (BD-Spash, dropped + "
              "bit-flipped media lines):\n");
  std::uint64_t clean_records = 0;
  for (const double frac : {0.0, 0.001, 0.01, 0.05}) {
    World w = fresh_world(cap);
    {
      hash::BDSpash m(*w.es);
      for (std::uint64_t i = 0; i < records; ++i) {
        m.insert((i * 0x9e3779b97f4a7c15ULL) % (std::uint64_t{1} << ubits),
                 i);
      }
      w.es->persist_all();
    }
    w.es.reset();
    w.dev->simulate_crash();
    // Mix failure modes: dropped lines (read as zeros -> silently lost
    // free-looking blocks) and bit flips (caught by the header checksum
    // -> quarantined), so both loss paths appear in the table.
    nvm::MediaCorruption c;
    const auto budget = static_cast<std::uint32_t>(
        frac * static_cast<double>(w.dev->media_lines_written()));
    c.dropped_lines = budget - budget / 4;
    c.bit_flips = budget / 4;
    c.seed = 0xc0de + static_cast<std::uint64_t>(frac * 1e4);
    const std::uint64_t hit = w.dev->corrupt_media(c);

    const std::uint64_t t0 = now_ns();
    w.pa = std::make_unique<alloc::PAllocator>(
        *w.dev, alloc::PAllocator::Mode::kAttach);
    epoch::EpochSys::Config ecfg;
    ecfg.start_advancer = false;
    ecfg.attach = true;
    w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
    hash::BDSpash rec(*w.es);
    const std::size_t n = rec.recover(1);
    const std::uint64_t t1 = now_ns();

    const auto& rep = w.es->last_recovery();
    if (frac == 0.0) clean_records = n;
    const std::uint64_t lost = clean_records > n ? clean_records - n : 0;
    char label[24];
    std::snprintf(label, sizeof label, "corrupt=%.1f%%", frac * 100.0);
    bench::record_row("corruption sweep", label, 1, (t1 - t0) / 1e6, "ms");
    bench::record_row("corruption sweep, quarantined", label, 1,
                      static_cast<double>(rep.blocks_quarantined),
                      "blocks");
    std::printf(
        "  corrupt=%5.1f%% lines_hit=%-7llu recovery=%8.1f ms "
        "recovered=%-9zu pairs_lost=%-7llu quarantined=%-6llu "
        "(checksum=%llu epoch=%llu superblocks=%llu)\n",
        frac * 100.0, static_cast<unsigned long long>(hit), (t1 - t0) / 1e6,
        n, static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(rep.blocks_quarantined),
        static_cast<unsigned long long>(rep.checksum_failures),
        static_cast<unsigned long long>(rep.epoch_violations),
        static_cast<unsigned long long>(rep.superblocks_quarantined));
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("sec52_recovery", argc, argv);
  bench::set_structure("phtm-veb");
  bench::set_structure("bdl-skiplist");
  bench::set_structure("bd-spash");
  const std::uint64_t records = env_int("BDHTM_RECOVERY_RECORDS", 400'000);
  const int ubits = 64 - __builtin_clzll(records * 2 - 1);
  const std::size_t cap =
      std::max<std::size_t>(768ull << 20, records * 512);
  bench::print_header(
      "Sec. 5.2: post-crash recovery time (heap scan + index rebuild)",
      "paper: 10M records / 500 MiB heap; scaled default 400k records "
      "(BDHTM_RECOVERY_RECORDS)");

  const auto fill_n = [&](auto& s) {
    for (std::uint64_t i = 0; i < records; ++i) {
      s.insert((i * 0x9e3779b97f4a7c15ULL) % (std::uint64_t{1} << ubits),
               i);
    }
  };

  study(
      "PHTM-vEB", cap,
      [&](epoch::EpochSys& es) {
        return std::make_unique<veb::PHTMvEB>(es, ubits);
      },
      fill_n,
      [](veb::PHTMvEB& t, int threads) { return t.recover(threads); });

  study(
      "BDL-Skiplist", cap,
      [&](epoch::EpochSys& es) {
        return std::make_unique<skiplist::BDLSkiplist>(es);
      },
      fill_n,
      [](skiplist::BDLSkiplist& t, int threads) {
        return t.recover(threads);
      });

  study(
      "BD-Spash", cap,
      [&](epoch::EpochSys& es) {
        return std::make_unique<hash::BDSpash>(es);
      },
      fill_n,
      [](hash::BDSpash& t, int threads) { return t.recover(threads); });

  corruption_sweep(records, ubits, cap);

  return bench::finish();
}
