// Fig. 9 (repo extension, ISSUE 1) — The epoch advancer's write-back
// pipeline: flusher count x coalescing x epoch length, on a
// redundant-write workload (every epoch, a small hot set of KV payloads
// is rewritten many times, as a skewed update-heavy service would).
//
// Expected shape: coalescing cuts bytes_flushed by the redundancy factor
// (>= 2x on this workload — each hot line is buffered ops/hot-set times
// per epoch but flushed once), which also shortens the transition.
// Additional flushers divide the remaining flush work, lowering mean
// advance latency further on multi-core hosts (a single-core container
// serializes the flushers, flattening that axis — noted per cell).
// flushers=1 + coalescing off is the pre-pipeline baseline.
#include <iterator>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"

using namespace bdhtm;

namespace {

constexpr int kHotBlocks = 32;     // hot set the workload keeps rewriting
constexpr int kPayload = 64;       // one cache line per block
constexpr int kEpochs = 30;        // transitions measured per cell

struct CellResult {
  double mean_advance_us;
  std::uint64_t bytes_flushed;
  double dedup;
};

CellResult run_cell(int flushers, bool coalesce, int ops_per_epoch) {
  nvm::Device dev(bench::nvm_cfg(64ull << 20));
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.start_advancer = false;  // transitions driven (and timed) here
  ecfg.flusher_threads = flushers;
  ecfg.coalesce_flushes = coalesce;
  epoch::EpochSys es(pa, ecfg);

  std::vector<void*> hot(kHotBlocks);
  es.beginOp();
  for (auto& p : hot) {
    p = es.pNew(kPayload);
    epoch::EpochSys::set_epoch_nontx(dev, p, es.current_epoch());
    es.pTrack(p);
  }
  es.endOp();
  es.advance();
  es.advance();

  std::uint64_t payload[kPayload / sizeof(std::uint64_t)] = {};
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (int i = 0; i < ops_per_epoch; ++i) {
      es.beginOp();
      payload[0] = (std::uint64_t(epoch) << 32) | i;
      es.pSet(hot[i % kHotBlocks], payload, sizeof(payload));
      es.endOp();
    }
    es.advance();
  }

  const auto& s = es.stats();
  const auto epochs = s.epochs_advanced.load();
  CellResult r;
  r.mean_advance_us =
      epochs ? s.advance_ns_total() / 1e3 / static_cast<double>(epochs) : 0.0;
  r.bytes_flushed = s.bytes_flushed.load();
  r.dedup = s.dedup_factor();
  bench::note_epoch_stats(s);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig9_writeback_pipeline", argc, argv);
  bench::set_structure("epoch-pipeline");
  bench::print_header(
      "Fig. 9: epoch write-back pipeline — flushers x coalescing x epoch "
      "length",
      "redundant-write workload: 32 hot 64B payloads rewritten all epoch; "
      "epoch length expressed as buffered ops per transition");

  const int ops_per_epoch[] = {256, 1024, 4096};
  std::printf("%-10s %-10s", "coalesce", "flushers");
  for (int ops : ops_per_epoch) std::printf("   ops/epoch=%-15d", ops);
  std::printf("\n%-10s %-10s", "", "");
  for (std::size_t i = 0; i < std::size(ops_per_epoch); ++i) {
    std::printf("   %-12s %-12s", "adv us", "MiB flushed");
  }
  std::printf("\n");

  std::uint64_t baseline_bytes[std::size(ops_per_epoch)] = {};
  std::uint64_t coalesced_bytes[std::size(ops_per_epoch)] = {};
  for (const bool coalesce : {false, true}) {
    for (const int flushers : {1, 2, 4}) {
      std::printf("%-10s %-10d", coalesce ? "on" : "off", flushers);
      for (std::size_t i = 0; i < std::size(ops_per_epoch); ++i) {
        const auto r = run_cell(flushers, coalesce, ops_per_epoch[i]);
        char table[48];
        std::snprintf(table, sizeof table, "coalesce=%s ops/epoch=%d",
                      coalesce ? "on" : "off", ops_per_epoch[i]);
        bench::record_row(table, "mean_advance_us", flushers,
                          r.mean_advance_us, "us");
        bench::record_row(table, "bytes_flushed", flushers,
                          static_cast<double>(r.bytes_flushed), "B");
        std::printf("   %-12.1f %-12.2f", r.mean_advance_us,
                    r.bytes_flushed / (1024.0 * 1024.0));
        if (flushers == 1) {
          (coalesce ? coalesced_bytes : baseline_bytes)[i] =
              r.bytes_flushed;
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }

  std::printf("\nbytes_flushed reduction from coalescing (off/on):");
  for (std::size_t i = 0; i < std::size(ops_per_epoch); ++i) {
    std::printf("  %.1fx", coalesced_bytes[i] > 0
                               ? double(baseline_bytes[i]) /
                                     double(coalesced_bytes[i])
                               : 0.0);
  }
  std::printf("\n");
  return bench::finish();
}
