// Microbenchmarks (google-benchmark) for the substrate primitives the
// paper's arguments rest on: HTM transaction commit cost vs lock cost,
// the price of a persist (clwb+fence) vs a buffered store, and epoch
// system API overhead. These are the per-operation costs whose ratios
// drive every figure-level result.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "alloc/pallocator.hpp"
#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "epoch/kvpair.hpp"
#include "htm/engine.hpp"
#include "nvm/device.hpp"

namespace {
using namespace bdhtm;

void BM_HtmTxnCommit(benchmark::State& state) {
  htm::configure(htm::EngineConfig{});
  alignas(64) static std::uint64_t cell = 0;
  for (auto _ : state) {
    const unsigned st = htm::run([&](htm::Txn& tx) {
      tx.store(&cell, tx.load(&cell) + 1);
    });
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_HtmTxnCommit);

void BM_MutexCriticalSection(benchmark::State& state) {
  static std::mutex mu;
  alignas(64) static std::uint64_t cell = 0;
  for (auto _ : state) {
    std::scoped_lock lk(mu);
    benchmark::DoNotOptimize(++cell);
  }
}
BENCHMARK(BM_MutexCriticalSection);

void BM_HtmTxnReadOnly8Words(benchmark::State& state) {
  htm::configure(htm::EngineConfig{});
  alignas(64) static std::uint64_t cells[64] = {};
  for (auto _ : state) {
    std::uint64_t sum = 0;
    htm::run([&](htm::Txn& tx) {
      for (int i = 0; i < 8; ++i) sum += tx.load(&cells[i * 8]);
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HtmTxnReadOnly8Words);

struct NvmFixture : benchmark::Fixture {
  void SetUp(const benchmark::State&) override {
    if (!dev) {
      dev = std::make_unique<nvm::Device>(bench::nvm_cfg(256ull << 20));
      pa = std::make_unique<alloc::PAllocator>(*dev);
      cell = static_cast<std::uint64_t*>(pa->alloc(64));
    }
  }
  static std::unique_ptr<nvm::Device> dev;
  static std::unique_ptr<alloc::PAllocator> pa;
  static std::uint64_t* cell;
};
std::unique_ptr<nvm::Device> NvmFixture::dev;
std::unique_ptr<alloc::PAllocator> NvmFixture::pa;
std::uint64_t* NvmFixture::cell;

BENCHMARK_F(NvmFixture, BM_BufferedNvmStore)(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    dev->write(cell, ++v);  // store only: persistence deferred
  }
}

BENCHMARK_F(NvmFixture, BM_StrictPersistStore)(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    dev->write(cell, ++v);
    dev->persist_nontxn(cell, 8);  // the strict-DL tax per update
  }
}

void BM_EpochBeginEnd(benchmark::State& state) {
  static std::unique_ptr<nvm::Device> dev;
  static std::unique_ptr<alloc::PAllocator> pa;
  static std::unique_ptr<epoch::EpochSys> es;
  if (!dev) {
    nvm::DeviceConfig cfg;
    cfg.capacity = 64ull << 20;
    dev = std::make_unique<nvm::Device>(cfg);
    pa = std::make_unique<alloc::PAllocator>(*dev);
    epoch::EpochSys::Config ecfg;
    ecfg.start_advancer = false;
    es = std::make_unique<epoch::EpochSys>(*pa, ecfg);
  }
  for (auto _ : state) {
    es->beginOp();
    es->endOp();
  }
}
BENCHMARK(BM_EpochBeginEnd);

void BM_EpochTrackedWrite(benchmark::State& state) {
  static std::unique_ptr<nvm::Device> dev;
  static std::unique_ptr<alloc::PAllocator> pa;
  static std::unique_ptr<epoch::EpochSys> es;
  static epoch::KVPair* kv;
  if (!dev) {
    nvm::DeviceConfig cfg;
    cfg.capacity = 64ull << 20;
    dev = std::make_unique<nvm::Device>(cfg);
    pa = std::make_unique<alloc::PAllocator>(*dev);
    epoch::EpochSys::Config ecfg;
    ecfg.start_advancer = false;
    es = std::make_unique<epoch::EpochSys>(*pa, ecfg);
    es->beginOp();
    kv = epoch::make_kv(*es, 1, 1);
    es->endOp();
  }
  std::uint64_t v = 0;
  for (auto _ : state) {
    es->beginOp();
    es->pSet(kv, &v, 8, offsetof(epoch::KVPair, value));
    es->pTrack(kv);
    es->endOp();
    ++v;
  }
  // Keep the tracked-range buffers bounded between iterations.
  es->advance();
  es->advance();
  es->advance();
}
BENCHMARK(BM_EpochTrackedWrite);

}  // namespace

// Hand-rolled main (instead of BENCHMARK_MAIN): the exporter flags
// --obs-out/--trace-out must be stripped before benchmark::Initialize,
// which treats unrecognized arguments as fatal.
int main(int argc, char** argv) {
  bdhtm::bench::init("micro_substrates", argc, argv);
  bdhtm::bench::set_structure("substrates");
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--obs-out", 9) == 0 ||
        std::strncmp(a, "--trace-out", 11) == 0) {
      const bool has_value = std::strchr(a, '=') != nullptr;
      if (!has_value && i + 1 < argc) ++i;  // skip the separate value
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bdhtm::bench::finish();
}
