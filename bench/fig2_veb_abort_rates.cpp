// Fig. 2 — HTM commit and abort-cause rates (percent of transaction
// attempts) for HTM-vEB and PHTM-vEB, uniform and Zipfian workloads,
// across thread counts; plus the ABORTED_MEMTYPE anomaly study: the
// simulated memtype abort probability is enabled at low thread counts
// and the paper's non-transactional pre-walk mitigation (built into the
// trees) brings the rate back down — the "red bars" of Fig. 2.
//
// Expected shape: no significant difference between the transient and
// buffered-durable trees; conflict aborts grow with threads but stay
// moderate (paper: <15% uniform, <35% Zipfian).
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "htm/engine.hpp"
#include "veb/htm_veb.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

void print_stats_row(const char* panel, int threads) {
  const auto s = htm::collect_stats();
  const double att = static_cast<double>(s.attempts());
  if (att == 0) return;
  char label[32];
  std::snprintf(label, sizeof label, "T=%d", threads);
  // Lock-subscription aborts are contention (the fallback lock was held),
  // reported apart from genuinely explicit aborts since the taxonomy
  // split them; before, both landed in the "explicit" column.
  std::printf(
      "%-12s commits %5.1f%%  conflict %5.1f%%  capacity %5.1f%%  "
      "lock-sub %5.1f%%  explicit %5.1f%%  memtype %5.1f%%  "
      "fallbacks %llu (lockwait %llu, exhausted %llu)\n",
      label, 100.0 * s.commits / att, 100.0 * s.aborts_conflict / att,
      100.0 * s.aborts_capacity / att,
      100.0 * s.aborts_lock_subscription / att,
      100.0 * s.aborts_explicit / att, 100.0 * s.aborts_memtype / att,
      static_cast<unsigned long long>(s.fallback_acquisitions),
      static_cast<unsigned long long>(s.fallbacks_lockwait),
      static_cast<unsigned long long>(s.fallbacks_exhausted));
  bench::record_row(panel, "commit_pct", threads, 100.0 * s.commits / att,
                    "%");
  bench::record_row(panel, "abort_pct", threads,
                    100.0 * s.total_aborts() / att, "%");
}

template <typename MakeTree>
void run_panel(const char* panel, int ubits, double theta,
               double memtype_prob, MakeTree&& make_tree) {
  std::printf("\n%s\n", panel);
  for (int t : bench::thread_counts()) {
    htm::EngineConfig ecfg;
    ecfg.memtype_abort_prob = t == 1 ? memtype_prob : 0.0;
    htm::configure(ecfg);
    htm::reset_stats();
    auto guard = make_tree();  // pair{unique-ish owner, map&}
    auto& tree = *guard;
    const workload::Config cfg = workload::Config::write_heavy().with(
        std::uint64_t{1} << ubits, theta, t, bench::bench_ms());
    workload::prefill(tree, cfg);
    htm::reset_stats();
    workload::run_workload(tree, cfg);
    print_stats_row(panel, t);
    bench::note_htm_stats();  // measured window only: prefill was reset out
    if (const auto* es = guard.epoch_stats()) bench::note_epoch_stats(*es);
  }
  htm::configure(htm::EngineConfig{});
}

struct PhtmBundle {
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<epoch::EpochSys> es;
  std::unique_ptr<veb::PHTMvEB> tree;
  veb::PHTMvEB& operator*() { return *tree; }
  const epoch::EpochStats* epoch_stats() const { return &es->stats(); }
};

PhtmBundle make_phtm(int ubits) {
  PhtmBundle b;
  const std::size_t cap =
      std::max<std::size_t>(512ull << 20, (std::size_t{1} << ubits) * 96);
  b.dev = std::make_unique<nvm::Device>(bench::nvm_cfg(cap));
  b.pa = std::make_unique<alloc::PAllocator>(*b.dev);
  b.es = std::make_unique<epoch::EpochSys>(*b.pa);
  b.tree = std::make_unique<veb::PHTMvEB>(*b.es, ubits);
  return b;
}

struct HtmBundle {
  std::unique_ptr<veb::HTMvEB> tree;
  veb::HTMvEB& operator*() { return *tree; }
  const epoch::EpochStats* epoch_stats() const { return nullptr; }
};

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig2_veb_abort_rates", argc, argv);
  bench::set_structure("phtm-veb");
  bench::set_structure("htm-veb");
  const int ubits = bench::universe_bits(20);
  // The anomaly fired on ~half of low-thread-count transactions on the
  // paper's machine; the simulation knob reproduces that rate, and the
  // trees' pre-walk mitigation (prewalk_hint) is what keeps the final
  // memtype share low in the rows below.
  const double memtype = 0.5;
  bench::print_header(
      "Fig. 2: HTM commit/abort rates, HTM-vEB vs PHTM-vEB",
      "percentages of transaction attempts; memtype anomaly simulated at "
      "T=1 with the paper's pre-walk mitigation active");

  for (const auto& [dist, theta] :
       {std::pair{"uniform", 0.0}, std::pair{"zipfian 0.99", 0.99}}) {
    char panel[96];
    std::snprintf(panel, sizeof panel, "HTM-vEB, %s", dist);
    run_panel(panel, ubits, theta, memtype, [&] {
      return HtmBundle{std::make_unique<veb::HTMvEB>(ubits)};
    });
    std::snprintf(panel, sizeof panel, "PHTM-vEB, %s", dist);
    run_panel(panel, ubits, theta, memtype, [&] { return make_phtm(ubits); });
  }
  return bench::finish();
}
