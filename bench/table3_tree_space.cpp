// Table 3 — Space consumption of the five search trees after prefilling
// half the universe with uniformly distributed keys.
//
// Expected shape (paper, universe 2^26): HTM-vEB and PHTM-vEB share the
// largest DRAM footprint (the vEB index); PHTM-vEB additionally carries
// NVM (KV blocks plus buffered old copies, ~1.8x LB+Tree's leaf layer);
// LB+Tree keeps a small DRAM inner tree; the (a,b)-trees use no DRAM at
// all but comparable NVM.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "trees/abtree.hpp"
#include "trees/lbtree.hpp"
#include "veb/htm_veb.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

double mib(std::uint64_t bytes) { return bytes / (1024.0 * 1024.0); }

std::size_t device_cap(int ubits) {
  return std::max<std::size_t>(768ull << 20, (std::size_t{1} << ubits) * 160);
}

workload::Config fill_cfg(int ubits) {
  workload::Config cfg;
  cfg.key_space = std::uint64_t{1} << ubits;
  cfg.prefill_frac = 0.5;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("table3_tree_space", argc, argv);
  bench::set_structure("phtm-veb");
  bench::set_structure("htm-veb");
  bench::set_structure("lbtree");
  bench::set_structure("abtree");
  const int ubits = bench::universe_bits(20);
  bench::print_header(
      "Table 3: space consumption (MiB) after prefilling 50% of the "
      "universe",
      "paper: 2^25 keys in a 2^26 universe; scaled default universe 2^20");
  std::printf("%-12s %12s %12s\n", "tree", "DRAM", "NVM");

  const auto report = [](const char* tree, double dram_mib,
                         double nvm_mib) {
    bench::record_row(tree, "DRAM", 1, dram_mib, "MiB");
    bench::record_row(tree, "NVM", 1, nvm_mib, "MiB");
    std::printf("%-12s %12.1f %12.1f\n", tree, dram_mib, nvm_mib);
  };
  {
    veb::HTMvEB t(ubits);
    workload::prefill(t, fill_cfg(ubits));
    report("HTM-vEB", mib(t.dram_bytes()), 0.0);
  }
  {
    nvm::Device dev(bench::nvm_cfg(device_cap(ubits)));
    alloc::PAllocator pa(dev);
    epoch::EpochSys es(pa);
    veb::PHTMvEB t(es, ubits);
    workload::prefill(t, fill_cfg(ubits));
    es.persist_all();  // settle pending reclamation before measuring
    bench::note_epoch_stats(es.stats());
    report("PHTM-vEB", mib(t.dram_bytes()), mib(t.nvm_bytes()));
  }
  {
    nvm::Device dev(bench::nvm_cfg(device_cap(ubits)));
    alloc::PAllocator pa(dev);
    trees::LBTree t(dev, pa);
    workload::prefill(t, fill_cfg(ubits));
    report("LB+Tree", mib(t.dram_bytes()), mib(t.nvm_bytes()));
  }
  {
    nvm::Device dev(bench::nvm_cfg(device_cap(ubits)));
    alloc::PAllocator pa(dev);
    trees::ElimABTree t(dev, pa);
    workload::prefill(t, fill_cfg(ubits));
    report("Elim-Tree", 0.0, mib(t.nvm_bytes()));
  }
  {
    nvm::Device dev(bench::nvm_cfg(device_cap(ubits)));
    alloc::PAllocator pa(dev);
    trees::OCCABTree t(dev, pa);
    workload::prefill(t, fill_cfg(ubits));
    report("OCC-Tree", 0.0, mib(t.nvm_bytes()));
  }
  return bench::finish();
}
