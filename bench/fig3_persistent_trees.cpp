// Fig. 3 — Throughput of persistent trees: PHTM-vEB vs LB+Tree vs
// OCC-ABTree vs Elim-ABTree, four panels (uniform/Zipfian x write-/
// read-heavy), across thread counts.
//
// Expected shape (paper): PHTM-vEB wins — 1.2-2.8x over LB+Tree and
// 1.6-4x over the (a,b)-trees — because its index is doubly-logarithmic
// AND entirely in DRAM, while the fully persistent trees pay NVM reads
// on every level and persists on every update.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "trees/abtree.hpp"
#include "trees/lbtree.hpp"
#include "veb/phtm_veb.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

workload::Config panel_cfg(int ubits, double theta, bool write_heavy,
                           int threads) {
  workload::Config cfg = write_heavy ? workload::Config::write_heavy()
                                     : workload::Config::read_heavy();
  cfg.key_space = std::uint64_t{1} << ubits;
  cfg.zipf_theta = theta;
  cfg.threads = threads;
  cfg.duration_ms = bench::bench_ms();
  return cfg;
}

std::size_t device_cap(int ubits) {
  return std::max<std::size_t>(768ull << 20, (std::size_t{1} << ubits) * 128);
}

double run_phtm(int ubits, const workload::Config& cfg) {
  nvm::Device dev(bench::nvm_cfg(device_cap(ubits)));
  alloc::PAllocator pa(dev);
  epoch::EpochSys es(pa);
  veb::PHTMvEB tree(es, ubits);
  workload::prefill(tree, cfg);
  const double mops = workload::run_workload(tree, cfg).mops();
  bench::note_epoch_stats(es.stats());
  return mops;
}

template <typename Tree>
double run_nvm_tree(int ubits, const workload::Config& cfg) {
  nvm::Device dev(bench::nvm_cfg(device_cap(ubits)));
  alloc::PAllocator pa(dev);
  Tree tree(dev, pa);
  workload::prefill(tree, cfg);
  return workload::run_workload(tree, cfg).mops();
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig3_persistent_trees", argc, argv);
  bench::set_structure("phtm-veb");
  bench::set_structure("lbtree");
  bench::set_structure("abtree");
  const int ubits = bench::universe_bits(18);
  const auto threads = bench::thread_counts();
  bench::print_header(
      "Fig. 3: persistent tree throughput (Mops/s)",
      "paper: universe 2^26, 50%% prefill; scaled default universe 2^18");

  struct Panel {
    const char* name;
    double theta;
    bool write_heavy;
  };
  const Panel panels[] = {
      {"(a) uniform, write-heavy", 0.0, true},
      {"(b) uniform, read-heavy", 0.0, false},
      {"(c) zipfian 0.99, write-heavy", 0.99, true},
      {"(d) zipfian 0.99, read-heavy", 0.99, false},
  };
  for (const Panel& p : panels) {
    std::printf("\n%s\n", p.name);
    bench::print_row_header("series", threads);
    auto series = [&](const char* name, auto&& run) {
      std::printf("%-22s", name);
      for (int t : threads) {
        const double mops = run(panel_cfg(ubits, p.theta, p.write_heavy, t));
        bench::record_row(p.name, name, t, mops, "Mops");
        std::printf("  %-10.3f", mops);
      }
      std::printf("\n");
    };
    series("PHTM-vEB",
           [&](const workload::Config& c) { return run_phtm(ubits, c); });
    series("LB+Tree", [&](const workload::Config& c) {
      return run_nvm_tree<trees::LBTree>(ubits, c);
    });
    series("OCC-ABTree", [&](const workload::Config& c) {
      return run_nvm_tree<trees::OCCABTree>(ubits, c);
    });
    series("Elim-ABTree", [&](const workload::Config& c) {
      return run_nvm_tree<trees::ElimABTree>(ubits, c);
    });
  }
  return bench::finish();
}
