// Shared helpers for the per-exhibit benchmark binaries (DESIGN.md §4).
//
// Every bench scales the paper's experiment down to container size by
// default and prints which knobs restore paper scale:
//   BDHTM_BENCH_MS        per-cell measurement time   (default 300)
//   BDHTM_THREADS         comma list of thread counts (default "1,2,4")
//   BDHTM_UNIVERSE_BITS   key-universe log2           (bench-specific)
//   BDHTM_NVM_LATENCY     0 disables the latency model (default on)
//
// The NVM latency model reproduces Optane's cost asymmetries (paper §1:
// reads ~3x DRAM, writes ~10x with a third of the bandwidth; §4.1), so
// who-wins/by-how-much shapes carry over even though the substrate is a
// simulator (EXPERIMENTS.md discusses absolute-number caveats).
// Every driver also feeds the structured exporter (ISSUE 3): call
// bench::init(name, argc, argv) first thing in main, record_row() for
// each printed data point, and `return bench::finish();` last. finish()
// writes BENCH_<name>.json (schema "bdhtm-bench/1": rows + the HTM
// abort-cause taxonomy + epoch latency quantiles + the full metric
// registry) and, when tracing was requested, a Chrome trace_event JSON
// that Perfetto loads directly. Flags/env:
//   --obs-out=PATH    / BDHTM_OBS_OUT    override the JSON path
//   --trace-out=PATH  / BDHTM_TRACE_OUT  enable tracing + set trace path
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.hpp"
#include "epoch/epoch_sys.hpp"
#include "htm/engine.hpp"
#include "nvm/device.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bdhtm::bench {

inline std::uint64_t bench_ms() { return env_int("BDHTM_BENCH_MS", 300); }

inline std::vector<int> thread_counts() {
  const std::string s = env_str("BDHTM_THREADS", "1,2,4");
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(std::stoi(s.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

inline int universe_bits(int fallback) {
  return static_cast<int>(env_int("BDHTM_UNIVERSE_BITS", fallback));
}

/// Optane-shaped latency model (relative costs, not absolute ns).
inline nvm::DeviceConfig nvm_cfg(std::size_t capacity, bool eadr = false) {
  nvm::DeviceConfig cfg;
  cfg.capacity = capacity;
  cfg.eadr = eadr;
  if (env_int("BDHTM_NVM_LATENCY", 1) != 0) {
    cfg.read_ns = 150;   // ~3x a DRAM access
    cfg.write_ns = 60;   // store-side bandwidth pressure
    cfg.flush_ns = 500;  // clwb reaching the media (Optane: ~0.5-1 us)
    cfg.fence_ns = 150;  // drain latency
  }
  return cfg;
}

inline void print_header(const char* title, const char* scale_note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", scale_note);
  std::printf("(env: BDHTM_BENCH_MS, BDHTM_THREADS, BDHTM_UNIVERSE_BITS, "
              "BDHTM_NVM_LATENCY)\n");
  std::printf("================================================================\n");
}

inline void print_row_header(const char* label,
                             const std::vector<int>& threads) {
  std::printf("%-22s", label);
  for (int t : threads) std::printf("  T=%-8d", t);
  std::printf("\n");
}

// ---- Epoch write-back pipeline stats (ISSUE 1) ----
//
// Figure drivers build one EpochSys per cell; each calls
// note_epoch_stats() before the cell tears down and
// print_epoch_stats_summary() at the end of main, so every BENCH_*.json
// capture carries the dedup factor, flushed volume, and transition
// latency of the write-back pipeline alongside the throughput table.

struct EpochStatsAgg {
  std::uint64_t epochs = 0;
  std::uint64_t ranges = 0;
  std::uint64_t bytes = 0;
  std::uint64_t lines = 0;
  std::uint64_t deduped = 0;
  std::uint64_t flush_ns = 0;
  std::uint64_t advance_ns = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t inline_advances = 0;
  // Merged latency distributions across every cell's EpochSys (the
  // exporter reports p50/p95/p99 from these, not just the means above).
  obs::HistogramSnapshot advance_hist{};
  obs::HistogramSnapshot flush_hist{};
};

inline EpochStatsAgg& epoch_stats_agg() {
  static EpochStatsAgg agg;
  return agg;
}

inline void note_epoch_stats(const epoch::EpochStats& s) {
  auto& a = epoch_stats_agg();
  a.epochs += s.epochs_advanced.load(std::memory_order_relaxed);
  a.ranges += s.ranges_flushed.load(std::memory_order_relaxed);
  a.bytes += s.bytes_flushed.load(std::memory_order_relaxed);
  a.lines += s.lines_flushed.load(std::memory_order_relaxed);
  a.deduped += s.lines_deduped.load(std::memory_order_relaxed);
  a.flush_ns += s.flush_ns_total();
  a.advance_ns += s.advance_ns_total();
  a.watchdog_trips += s.watchdog_trips.load(std::memory_order_relaxed);
  a.inline_advances += s.inline_advances.load(std::memory_order_relaxed);
  a.advance_hist.merge(s.advance_ns.snapshot());
  a.flush_hist.merge(s.flush_ns.snapshot());
}

inline void print_epoch_stats_summary() {
  const auto& a = epoch_stats_agg();
  if (a.epochs == 0) return;
  const double dedup =
      a.lines > 0 ? double(a.lines + a.deduped) / double(a.lines) : 1.0;
  std::printf(
      "epoch-stats: epochs=%llu ranges_flushed=%llu lines_flushed=%llu "
      "bytes_flushed=%llu dedup_factor=%.2f mean_advance_us=%.1f "
      "mean_flush_us=%.1f\n",
      static_cast<unsigned long long>(a.epochs),
      static_cast<unsigned long long>(a.ranges),
      static_cast<unsigned long long>(a.lines),
      static_cast<unsigned long long>(a.bytes), dedup,
      a.advance_ns / 1e3 / static_cast<double>(a.epochs),
      a.flush_ns / 1e3 / static_cast<double>(a.epochs));
  if (a.watchdog_trips != 0 || a.inline_advances != 0) {
    // Nonzero means the background advancer fell behind its watchdog
    // deadline during the run and workers drove transitions inline —
    // the cell's latency numbers include degraded-mode epochs.
    std::printf("epoch-stats: watchdog_trips=%llu inline_advances=%llu\n",
                static_cast<unsigned long long>(a.watchdog_trips),
                static_cast<unsigned long long>(a.inline_advances));
  }
}

// ---- Structured export (ISSUE 3) ----

/// One printed data point, replicated into the JSON so plots never
/// re-parse stdout. `table` groups rows (one table per printed panel).
struct BenchRow {
  std::string table;
  std::string label;
  int threads;
  double value;
  std::string unit;
};

struct BenchExport {
  std::string name;
  std::string obs_out;    // JSON path; defaults to BENCH_<name>.json
  std::string trace_out;  // empty = tracing stays off
  std::vector<std::string> structures;  // canonical names, insertion order
  std::vector<BenchRow> rows;
  htm::TxStats htm{};     // accumulated measured windows
  bool htm_noted = false;
};

inline BenchExport& bench_export() {
  static BenchExport e;
  return e;
}

/// Parse exporter flags + env and (when tracing) flip the trace switch.
/// Call first thing in main, before any instrumented work.
inline void init(const char* name, int argc, char** argv) {
  BenchExport& e = bench_export();
  e.name = name;
  e.obs_out = env_str("BDHTM_OBS_OUT", "BENCH_" + std::string(name) + ".json");
  e.trace_out = env_str("BDHTM_TRACE_OUT", "");
  auto flag = [&](std::string_view arg, std::string_view key,
                  int& i) -> const char* {
    if (arg.substr(0, key.size()) != key) return nullptr;
    if (arg.size() > key.size() && arg[key.size()] == '=') {
      return argv[i] + key.size() + 1;
    }
    if (arg.size() == key.size() && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const char* v = flag(arg, "--obs-out", i)) {
      e.obs_out = v;
    } else if (const char* v = flag(arg, "--trace-out", i)) {
      e.trace_out = v;
    }
  }
  if (!e.trace_out.empty()) obs::set_tracing(true);
}

/// Accumulate the engine's current stats window into the export. Call
/// after each measured cell, before the htm::reset_stats() that starts
/// the next one; drivers that never reset can skip it (finish() then
/// snapshots the totals itself).
inline void note_htm_stats() {
  BenchExport& e = bench_export();
  const htm::TxStats s = htm::collect_stats();
  htm::TxStats& a = e.htm;
  a.commits += s.commits;
  a.aborts_conflict += s.aborts_conflict;
  a.aborts_capacity += s.aborts_capacity;
  a.aborts_explicit += s.aborts_explicit;
  a.aborts_lock_subscription += s.aborts_lock_subscription;
  a.aborts_old_see_new += s.aborts_old_see_new;
  a.aborts_persist += s.aborts_persist;
  a.aborts_memtype += s.aborts_memtype;
  a.aborts_spurious += s.aborts_spurious;
  a.fallback_acquisitions += s.fallback_acquisitions;
  a.fallbacks_lockwait += s.fallbacks_lockwait;
  a.fallbacks_exhausted += s.fallbacks_exhausted;
  a.fallbacks_wait_timeout += s.fallbacks_wait_timeout;
  a.fallback_stripes_acquired += s.fallback_stripes_acquired;
  e.htm_noted = true;
}

/// Declare a structure this bench exercises (canonical lowercase name,
/// e.g. "phtm-veb", "bdl-skiplist", "bd-spash"). Repeatable; duplicates
/// collapse. Every driver must call this at least once so the JSON
/// header names its structures uniformly — fig4 and fig7 used to
/// disagree (series-label-only vs free-text) and plot tooling had to
/// special-case them; CI asserts `.config.structures` is non-empty.
inline void set_structure(const char* name) {
  auto& v = bench_export().structures;
  for (const auto& s : v) {
    if (s == name) return;
  }
  v.emplace_back(name);
}

inline void record_row(std::string table, std::string label, int threads,
                       double value, std::string unit) {
  bench_export().rows.push_back({std::move(table), std::move(label), threads,
                                 value, std::move(unit)});
}

namespace detail {

inline void json_histogram(obs::JsonWriter& w,
                           const obs::HistogramSnapshot& h) {
  w.begin_object();
  w.key("count");
  w.value(h.count);
  w.key("mean");
  w.value(h.mean());
  w.key("min");
  w.value(h.min);
  w.key("p50");
  w.value(h.quantile(0.50));
  w.key("p95");
  w.value(h.quantile(0.95));
  w.key("p99");
  w.value(h.quantile(0.99));
  w.key("max");
  w.value(h.max);
  w.end_object();
}

inline bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace detail

/// Write BENCH_<name>.json (+ the trace, when enabled) and print the
/// stdout summary. Returns main()'s exit code.
inline int finish() {
  BenchExport& e = bench_export();
  print_epoch_stats_summary();
  // Drivers that never reset per cell report their totals here; the
  // by-cause sum then equals the engine's own total by construction.
  if (!e.htm_noted) note_htm_stats();
  const htm::TxStats& h = e.htm;
  const EpochStatsAgg& a = epoch_stats_agg();

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("bdhtm-bench/1");
  w.key("bench");
  w.value(e.name);
  w.key("config");
  w.begin_object();
  w.key("bench_ms");
  w.value(static_cast<std::uint64_t>(bench_ms()));
  w.key("threads");
  w.value(env_str("BDHTM_THREADS", "1,2,4"));
  // Uniform header fields (the old files let each driver improvise):
  // `structure` is the primary structure under test, `structures` every
  // one the binary exercised, `thread_counts` the sorted unique thread
  // counts that actually produced rows (not the raw env string above,
  // which drivers with fixed thread counts ignore).
  w.key("structure");
  w.value(e.structures.empty() ? std::string{} : e.structures.front());
  w.key("structures");
  w.begin_array();
  for (const std::string& s : e.structures) w.value(s);
  w.end_array();
  {
    std::vector<int> tc;
    for (const BenchRow& r : e.rows) {
      bool seen = false;
      for (int t : tc) seen = seen || t == r.threads;
      if (!seen) tc.push_back(r.threads);
    }
    std::sort(tc.begin(), tc.end());
    w.key("thread_counts");
    w.begin_array();
    for (int t : tc) w.value(t);
    w.end_array();
  }
  w.key("nvm_latency");
  w.value(env_int("BDHTM_NVM_LATENCY", 1) != 0);
  w.key("obs_noop");
  w.value(obs::kNoop);
  w.end_object();

  w.key("rows");
  w.begin_array();
  for (const BenchRow& r : e.rows) {
    w.begin_object();
    w.key("table");
    w.value(r.table);
    w.key("label");
    w.value(r.label);
    w.key("threads");
    w.value(r.threads);
    w.key("value");
    w.value(r.value);
    w.key("unit");
    w.value(r.unit);
    w.end_object();
  }
  w.end_array();

  w.key("htm");
  w.begin_object();
  w.key("commits");
  w.value(h.commits);
  w.key("attempts");
  w.value(h.attempts());
  w.key("aborts");
  w.begin_object();
  w.key("total");
  w.value(h.total_aborts());
  w.key("by_cause");
  w.begin_object();
  w.key("conflict");
  w.value(h.aborts_conflict);
  w.key("capacity");
  w.value(h.aborts_capacity);
  w.key("explicit");
  w.value(h.aborts_explicit);
  w.key("lock_subscription");
  w.value(h.aborts_lock_subscription);
  w.key("old_see_new");
  w.value(h.aborts_old_see_new);
  w.key("persist");
  w.value(h.aborts_persist);
  w.key("memtype");
  w.value(h.aborts_memtype);
  w.key("spurious");
  w.value(h.aborts_spurious);
  w.end_object();
  w.end_object();
  w.key("fallbacks");
  w.begin_object();
  w.key("total");
  w.value(h.fallback_acquisitions);
  w.key("lock_wait");
  w.value(h.fallbacks_lockwait);
  w.key("retry_exhausted");
  w.value(h.fallbacks_exhausted);
  w.key("wait_timeout");
  w.value(h.fallbacks_wait_timeout);
  w.key("stripes_acquired");
  w.value(h.fallback_stripes_acquired);
  w.end_object();
  w.end_object();

  w.key("epoch");
  w.begin_object();
  w.key("epochs_advanced");
  w.value(a.epochs);
  w.key("ranges_flushed");
  w.value(a.ranges);
  w.key("lines_flushed");
  w.value(a.lines);
  w.key("bytes_flushed");
  w.value(a.bytes);
  w.key("lines_deduped");
  w.value(a.deduped);
  w.key("dedup_factor");
  w.value(a.lines > 0 ? double(a.lines + a.deduped) / double(a.lines) : 1.0);
  w.key("watchdog_trips");
  w.value(a.watchdog_trips);
  w.key("inline_advances");
  w.value(a.inline_advances);
  w.key("advance_ns");
  detail::json_histogram(w, a.advance_hist);
  w.key("flush_ns");
  detail::json_histogram(w, a.flush_hist);
  w.end_object();

  // Full registry dump: every named counter and histogram any subsystem
  // registered, so the file never lags a new metric.
  const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
  w.key("counters");
  w.begin_object();
  for (const auto& [cname, total] : snap.counters) {
    w.key(cname);
    w.value(total);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [gname, gval] : snap.gauges) {
    w.key(gname);
    w.value(gval);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [hname, hist] : snap.histograms) {
    w.key(hname);
    detail::json_histogram(w, hist);
  }
  w.end_object();

  if (!e.trace_out.empty()) {
    w.key("trace");
    w.begin_object();
    w.key("file");
    w.value(e.trace_out);
    w.key("events_emitted");
    w.value(obs::trace_events_emitted());
    w.key("events_captured");
    w.value(obs::trace_events_captured());
    w.end_object();
  }
  w.end_object();

  int rc = 0;
  if (!detail::write_file(e.obs_out, std::move(w).str() + "\n")) {
    std::fprintf(stderr, "bench: failed to write %s\n", e.obs_out.c_str());
    rc = 1;
  } else {
    std::printf("bench-json: %s\n", e.obs_out.c_str());
  }
  if (!e.trace_out.empty()) {
    // Workers and advancers joined before finish(): the rings are
    // quiescent, which the trace exporter requires.
    if (!obs::write_chrome_trace(e.trace_out)) {
      std::fprintf(stderr, "bench: failed to write %s\n", e.trace_out.c_str());
      rc = 1;
    } else {
      std::printf("bench-trace: %s (open in https://ui.perfetto.dev)\n",
                  e.trace_out.c_str());
    }
  }
  return rc;
}

}  // namespace bdhtm::bench
