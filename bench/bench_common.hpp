// Shared helpers for the per-exhibit benchmark binaries (DESIGN.md §4).
//
// Every bench scales the paper's experiment down to container size by
// default and prints which knobs restore paper scale:
//   BDHTM_BENCH_MS        per-cell measurement time   (default 300)
//   BDHTM_THREADS         comma list of thread counts (default "1,2,4")
//   BDHTM_UNIVERSE_BITS   key-universe log2           (bench-specific)
//   BDHTM_NVM_LATENCY     0 disables the latency model (default on)
//
// The NVM latency model reproduces Optane's cost asymmetries (paper §1:
// reads ~3x DRAM, writes ~10x with a third of the bandwidth; §4.1), so
// who-wins/by-how-much shapes carry over even though the substrate is a
// simulator (EXPERIMENTS.md discusses absolute-number caveats).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "epoch/epoch_sys.hpp"
#include "nvm/device.hpp"

namespace bdhtm::bench {

inline std::uint64_t bench_ms() { return env_int("BDHTM_BENCH_MS", 300); }

inline std::vector<int> thread_counts() {
  const std::string s = env_str("BDHTM_THREADS", "1,2,4");
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(std::stoi(s.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

inline int universe_bits(int fallback) {
  return static_cast<int>(env_int("BDHTM_UNIVERSE_BITS", fallback));
}

/// Optane-shaped latency model (relative costs, not absolute ns).
inline nvm::DeviceConfig nvm_cfg(std::size_t capacity, bool eadr = false) {
  nvm::DeviceConfig cfg;
  cfg.capacity = capacity;
  cfg.eadr = eadr;
  if (env_int("BDHTM_NVM_LATENCY", 1) != 0) {
    cfg.read_ns = 150;   // ~3x a DRAM access
    cfg.write_ns = 60;   // store-side bandwidth pressure
    cfg.flush_ns = 500;  // clwb reaching the media (Optane: ~0.5-1 us)
    cfg.fence_ns = 150;  // drain latency
  }
  return cfg;
}

inline void print_header(const char* title, const char* scale_note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", scale_note);
  std::printf("(env: BDHTM_BENCH_MS, BDHTM_THREADS, BDHTM_UNIVERSE_BITS, "
              "BDHTM_NVM_LATENCY)\n");
  std::printf("================================================================\n");
}

inline void print_row_header(const char* label,
                             const std::vector<int>& threads) {
  std::printf("%-22s", label);
  for (int t : threads) std::printf("  T=%-8d", t);
  std::printf("\n");
}

// ---- Epoch write-back pipeline stats (ISSUE 1) ----
//
// Figure drivers build one EpochSys per cell; each calls
// note_epoch_stats() before the cell tears down and
// print_epoch_stats_summary() at the end of main, so every BENCH_*.json
// capture carries the dedup factor, flushed volume, and transition
// latency of the write-back pipeline alongside the throughput table.

struct EpochStatsAgg {
  std::uint64_t epochs = 0;
  std::uint64_t ranges = 0;
  std::uint64_t bytes = 0;
  std::uint64_t lines = 0;
  std::uint64_t deduped = 0;
  std::uint64_t flush_ns = 0;
  std::uint64_t advance_ns = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t inline_advances = 0;
};

inline EpochStatsAgg& epoch_stats_agg() {
  static EpochStatsAgg agg;
  return agg;
}

inline void note_epoch_stats(const epoch::EpochStats& s) {
  auto& a = epoch_stats_agg();
  a.epochs += s.epochs_advanced.load(std::memory_order_relaxed);
  a.ranges += s.ranges_flushed.load(std::memory_order_relaxed);
  a.bytes += s.bytes_flushed.load(std::memory_order_relaxed);
  a.lines += s.lines_flushed.load(std::memory_order_relaxed);
  a.deduped += s.lines_deduped.load(std::memory_order_relaxed);
  a.flush_ns += s.flush_ns_total.load(std::memory_order_relaxed);
  a.advance_ns += s.advance_ns_total.load(std::memory_order_relaxed);
  a.watchdog_trips += s.watchdog_trips.load(std::memory_order_relaxed);
  a.inline_advances += s.inline_advances.load(std::memory_order_relaxed);
}

inline void print_epoch_stats_summary() {
  const auto& a = epoch_stats_agg();
  if (a.epochs == 0) return;
  const double dedup =
      a.lines > 0 ? double(a.lines + a.deduped) / double(a.lines) : 1.0;
  std::printf(
      "epoch-stats: epochs=%llu ranges_flushed=%llu lines_flushed=%llu "
      "bytes_flushed=%llu dedup_factor=%.2f mean_advance_us=%.1f "
      "mean_flush_us=%.1f\n",
      static_cast<unsigned long long>(a.epochs),
      static_cast<unsigned long long>(a.ranges),
      static_cast<unsigned long long>(a.lines),
      static_cast<unsigned long long>(a.bytes), dedup,
      a.advance_ns / 1e3 / static_cast<double>(a.epochs),
      a.flush_ns / 1e3 / static_cast<double>(a.epochs));
  if (a.watchdog_trips != 0 || a.inline_advances != 0) {
    // Nonzero means the background advancer fell behind its watchdog
    // deadline during the run and workers drove transitions inline —
    // the cell's latency numbers include degraded-mode epochs.
    std::printf("epoch-stats: watchdog_trips=%llu inline_advances=%llu\n",
                static_cast<unsigned long long>(a.watchdog_trips),
                static_cast<unsigned long long>(a.inline_advances));
  }
}

}  // namespace bdhtm::bench
