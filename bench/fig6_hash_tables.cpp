// Fig. 6 — Throughput of persistent hash tables: BD-Spash vs Spash (on
// an eADR device) vs CCEH vs Plush, four panels (uniform/Zipfian x
// write-/read-heavy), across thread counts.
//
// Expected shape (paper): BD-Spash approaches Spash (matching it on the
// write-heavy Zipfian panel) because the epoch system moves persistence
// off the critical path; CCEH and Plush trail due to strict-DL persists,
// with CCEH ahead of Plush on write-heavy panels and Plush suffering
// log contention under skew.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "hash/bd_spash.hpp"
#include "hash/cceh.hpp"
#include "hash/plush.hpp"
#include "hash/spash.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

workload::Config panel_cfg(std::uint64_t keys, double theta,
                           bool write_heavy, int threads) {
  return (write_heavy ? workload::Config::write_heavy()
                      : workload::Config::read_heavy())
      .with(keys, theta, threads, bench::bench_ms());
}

std::size_t device_cap(std::uint64_t keys) {
  return std::max<std::size_t>(768ull << 20, keys * 384);
}

double run_spash(std::uint64_t keys, const workload::Config& cfg) {
  nvm::Device dev(bench::nvm_cfg(device_cap(keys), /*eadr=*/true));
  alloc::PAllocator pa(dev);
  hash::Spash m(pa);
  workload::prefill(m, cfg);
  return workload::run_workload(m, cfg).mops();
}

double run_bdspash(std::uint64_t keys, const workload::Config& cfg) {
  nvm::Device dev(bench::nvm_cfg(device_cap(keys)));
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 50'000;
  epoch::EpochSys es(pa, ecfg);
  hash::BDSpash m(es);
  workload::prefill(m, cfg);
  const double mops = workload::run_workload(m, cfg).mops();
  bench::note_epoch_stats(es.stats());
  return mops;
}

double run_cceh(std::uint64_t keys, const workload::Config& cfg) {
  nvm::Device dev(bench::nvm_cfg(device_cap(keys)));
  alloc::PAllocator pa(dev);
  hash::CCEH m(dev, pa);
  workload::prefill(m, cfg);
  return workload::run_workload(m, cfg).mops();
}

double run_plush(std::uint64_t keys, const workload::Config& cfg) {
  nvm::Device dev(bench::nvm_cfg(device_cap(keys)));
  alloc::PAllocator pa(dev);
  // Size levels so the deepest cannot overflow at this key count.
  hash::Plush m(dev, pa, hash::Plush::Mode::kFormat,
                /*root_buckets_log2=*/8, /*levels=*/5);
  workload::prefill(m, cfg);
  return workload::run_workload(m, cfg).mops();
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig6_hash_tables", argc, argv);
  bench::set_structure("bd-spash");
  bench::set_structure("spash");
  bench::set_structure("cceh");
  bench::set_structure("plush");
  const std::uint64_t keys = std::uint64_t{1}
                             << bench::universe_bits(17);
  const auto threads = bench::thread_counts();
  bench::print_header(
      "Fig. 6: persistent hash-table throughput (Mops/s)",
      "paper: YCSB, Optane; scaled default 2^17 keys; Spash runs on a "
      "simulated eADR (persistent-cache) device");

  struct Panel {
    const char* name;
    double theta;
    bool write_heavy;
  };
  const Panel panels[] = {
      {"(a) uniform, write-heavy", 0.0, true},
      {"(b) uniform, read-heavy", 0.0, false},
      {"(c) zipfian 0.99, write-heavy", 0.99, true},
      {"(d) zipfian 0.99, read-heavy", 0.99, false},
  };
  for (const Panel& p : panels) {
    std::printf("\n%s\n", p.name);
    bench::print_row_header("series", threads);
    auto series = [&](const char* name, auto&& run) {
      std::printf("%-22s", name);
      for (int t : threads) {
        const double mops =
            run(keys, panel_cfg(keys, p.theta, p.write_heavy, t));
        bench::record_row(p.name, name, t, mops, "Mops");
        std::printf("  %-10.3f", mops);
        std::fflush(stdout);
      }
      std::printf("\n");
    };
    series("Spash (eADR)",
           [&](std::uint64_t k, const workload::Config& c) {
             return run_spash(k, c);
           });
    series("BD-Spash", [&](std::uint64_t k, const workload::Config& c) {
      return run_bdspash(k, c);
    });
    series("CCEH", [&](std::uint64_t k, const workload::Config& c) {
      return run_cceh(k, c);
    });
    series("Plush", [&](std::uint64_t k, const workload::Config& c) {
      return run_plush(k, c);
    });
  }
  return bench::finish();
}
