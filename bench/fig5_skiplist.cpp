// Fig. 5 — Throughput of the persistent lock-free skiplist family,
// uniform workload with read:write = 2:8, across thread counts:
//
//   DL-Skiplist          Wang et al.: PMwCAS, all-NVM, strictly durable
//   P-Skiplist-no-flush  DL minus persist instructions (not consistent)
//   P-Skiplist-HTM-MCAS  + HTM-based MwCAS (not consistent)
//   BDL-Skiplist         DRAM towers + epoch-buffered KV blocks (ours)
//   T-Skiplist           transient: DRAM + volatile MwCAS (ceiling)
//
// Expected shape (paper): BDL ~3x DL; no-flush ~1.7x DL; HTM-MwCAS adds
// ~10% over no-flush; T-Skiplist only ~20% above BDL.
#include <memory>

#include "bench/bench_common.hpp"
#include "epoch/epoch_sys.hpp"
#include "skiplist/bdl_skiplist.hpp"
#include "skiplist/skiplists.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

workload::Config cfg_for(int threads, std::uint64_t keys) {
  // read:write = 2:8, uniform keys.
  return workload::Config::write_heavy().with(keys, /*theta=*/0.0, threads,
                                              bench::bench_ms());
}

std::size_t device_cap(std::uint64_t keys) {
  return std::max<std::size_t>(768ull << 20, keys * 512);
}

template <typename Make>
double run_one(std::uint64_t keys, int threads, Make&& make) {
  auto bundle = make();
  auto& sl = *bundle;
  auto cfg = cfg_for(threads, keys);
  workload::prefill(sl, cfg);
  return workload::run_workload(sl, cfg).mops();
}

struct TBundle {
  std::unique_ptr<skiplist::TSkiplist> sl;
  skiplist::TSkiplist& operator*() { return *sl; }
};
struct NvmBundle {
  // Capture epoch-pipeline stats just before the cell tears down (the
  // epoch system, when one exists, is still alive here).
  ~NvmBundle() {
    if (es) bench::note_epoch_stats(es->stats());
  }
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<skiplist::PSkiplistNoFlush> nf;
  std::unique_ptr<skiplist::PSkiplistHTMMwCAS> hm;
  std::unique_ptr<skiplist::DLSkiplist> dl;
  std::unique_ptr<epoch::EpochSys> es;
  std::unique_ptr<skiplist::BDLSkiplist> bdl;
  template <typename T>
  struct Ref {
    T& t;
    T& operator*() { return t; }
  };
};

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig5_skiplist", argc, argv);
  bench::set_structure("bdl-skiplist");
  bench::set_structure("dl-skiplist");
  bench::set_structure("t-skiplist");
  const std::uint64_t keys = std::uint64_t{1}
                             << bench::universe_bits(17);
  const auto threads = bench::thread_counts();
  bench::print_header(
      "Fig. 5: skiplist-family throughput (Mops/s), uniform, r:w = 2:8",
      "paper: 1M keys; scaled default 2^17 keys (BDHTM_UNIVERSE_BITS)");
  bench::print_row_header("series", threads);

  auto series = [&](const char* name, auto&& make) {
    std::printf("%-22s", name);
    for (int t : threads) {
      const double mops = run_one(keys, t, make);
      bench::record_row("skiplist", name, t, mops, "Mops");
      std::printf("  %-10.3f", mops);
      std::fflush(stdout);
    }
    std::printf("\n");
  };

  series("DL-Skiplist", [&] {
    auto b = std::make_unique<NvmBundle>();
    b->dev = std::make_unique<nvm::Device>(bench::nvm_cfg(device_cap(keys)));
    b->pa = std::make_unique<alloc::PAllocator>(*b->dev);
    b->dl = std::make_unique<skiplist::DLSkiplist>(*b->dev, *b->pa);
    struct H {
      std::unique_ptr<NvmBundle> b;
      skiplist::DLSkiplist& operator*() { return *b->dl; }
    };
    return H{std::move(b)};
  });
  series("P-Skiplist-no-flush", [&] {
    auto b = std::make_unique<NvmBundle>();
    b->dev = std::make_unique<nvm::Device>(bench::nvm_cfg(device_cap(keys)));
    b->pa = std::make_unique<alloc::PAllocator>(*b->dev);
    b->nf = std::make_unique<skiplist::PSkiplistNoFlush>(*b->pa);
    struct H {
      std::unique_ptr<NvmBundle> b;
      skiplist::PSkiplistNoFlush& operator*() { return *b->nf; }
    };
    return H{std::move(b)};
  });
  series("P-Skiplist-HTM-MCAS", [&] {
    auto b = std::make_unique<NvmBundle>();
    b->dev = std::make_unique<nvm::Device>(bench::nvm_cfg(device_cap(keys)));
    b->pa = std::make_unique<alloc::PAllocator>(*b->dev);
    b->hm = std::make_unique<skiplist::PSkiplistHTMMwCAS>(*b->pa);
    struct H {
      std::unique_ptr<NvmBundle> b;
      skiplist::PSkiplistHTMMwCAS& operator*() { return *b->hm; }
    };
    return H{std::move(b)};
  });
  series("BDL-Skiplist", [&] {
    auto b = std::make_unique<NvmBundle>();
    b->dev = std::make_unique<nvm::Device>(bench::nvm_cfg(device_cap(keys)));
    b->pa = std::make_unique<alloc::PAllocator>(*b->dev);
    epoch::EpochSys::Config ecfg;
    ecfg.epoch_length_us = 50'000;
    b->es = std::make_unique<epoch::EpochSys>(*b->pa, ecfg);
    b->bdl = std::make_unique<skiplist::BDLSkiplist>(*b->es);
    struct H {
      std::unique_ptr<NvmBundle> b;
      skiplist::BDLSkiplist& operator*() { return *b->bdl; }
    };
    return H{std::move(b)};
  });
  series("T-Skiplist",
         [&] { return TBundle{std::make_unique<skiplist::TSkiplist>()}; });
  return bench::finish();
}
