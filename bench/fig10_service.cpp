// Fig. 10 — service-layer throughput and latency: the sharded, batched
// KVStore front door (DESIGN.md §10) over the three case-study
// structures. Three series per backend, all at 8 closed-loop clients:
//
//   direct     — the clients call the structure library directly (no
//                service): the upper reference for raw structure cost.
//   unbatched  — the service in unbatched mode: synchronous clients
//                (one request in flight each) and max_batch = 1, so
//                every operation crosses the submission queue alone,
//                pays its own worker handoff and client wakeup, and
//                runs as its own Listing 1 envelope + transaction.
//   batched    — clients submit flights of 16 and max_batch = 16: a
//                flight crosses the queue as a run, resolves with one
//                wakeup, and executes as ONE envelope + ONE transaction
//                per per-shard group.
//
// Cells:
//   - the three series, YCSB-A (Zipfian 0.99), per backend, batched at
//     1/2/4 shards;
//   - YCSB-A/B/C mix sweep on BD-Spash;
//   - an open-loop overload cell measuring admission-control shedding
//     (tiny queues, submitters outrunning the drain worker).
//
// Expected shape: batching amortizes the per-operation service handoff
// (queue crossing, wakeup) plus the seq_cst beginOp/endOp announce
// traffic and per-transaction begin/commit across max_batch operations,
// so batched mode clears unbatched mode comfortably (acceptance bar:
// >= 1.5x at 8 clients on at least one structure). It does NOT beat
// direct library access by much — and can trail it — because the
// simulated media latency inside each operation is not amortizable (by
// design: buffered durability moves persists off the critical path, not
// the accesses themselves). More shards fragment a client flight into
// smaller per-shard groups, trading amortization for smaller HTM
// footprints. Latency rows report end-to-end submit->resolve quantiles
// (us); the overload cell reports shed rate (%) and surviving goodput.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/pallocator.hpp"
#include "bench/bench_common.hpp"
#include "common/spin.hpp"
#include "epoch/epoch_sys.hpp"
#include "nvm/device.hpp"
#include "svc/kvstore.hpp"
#include "workload/workload.hpp"

using namespace bdhtm;

namespace {

constexpr int kClients = 8;
constexpr std::size_t kFlight = 16;  // closed-loop ops in flight / client

std::size_t device_cap(std::uint64_t keys) {
  return std::max<std::size_t>(512ull << 20, keys * 512);
}

struct Cell {
  double mops = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double shed_pct = 0;
};

double q_us(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0;
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(i),
                   ns.end());
  return static_cast<double>(ns[i]) / 1e3;
}

/// Fill one request from the workload mix (reads, then inserts, then
/// removes — the same dice layout run_workload uses).
void roll(svc::Request* r, workload::KeyGen& gen,
          const workload::Config& cfg) {
  const std::uint64_t k = gen.next();
  const auto dice = gen.rng().next_below(100);
  if (dice < static_cast<std::uint64_t>(cfg.read_pct)) {
    *r = svc::Request::get(k);
  } else if (dice <
             static_cast<std::uint64_t>(cfg.read_pct + cfg.insert_pct)) {
    *r = svc::Request::put(k, k + 1);
  } else {
    *r = svc::Request::del(k);
  }
}

/// Routes prefill through the store's own shard map.
struct StorePrefill {
  svc::KVStore& store;
  bool insert(std::uint64_t k, std::uint64_t v) {
    return store.shard(store.shard_of(k)).insert(k, v);
  }
};

struct World {
  std::unique_ptr<nvm::Device> dev;
  std::unique_ptr<alloc::PAllocator> pa;
  std::unique_ptr<epoch::EpochSys> es;
};

World make_world(std::uint64_t keys) {
  World w;
  w.dev = std::make_unique<nvm::Device>(bench::nvm_cfg(device_cap(keys)));
  w.pa = std::make_unique<alloc::PAllocator>(*w.dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 50'000;
  w.es = std::make_unique<epoch::EpochSys>(*w.pa, ecfg);
  return w;
}

svc::KVStoreConfig store_cfg(svc::Backend b, int shards, int ubits,
                             std::size_t max_batch) {
  svc::KVStoreConfig scfg;
  scfg.backend = b;
  scfg.shards = shards;
  scfg.workers = 1;  // one drainer; clients outnumber it by design
  scfg.clients = kClients;
  scfg.queue_capacity = 64;
  scfg.max_batch = max_batch;
  scfg.shard_opt.veb_ubits = ubits;
  return scfg;
}

/// Closed-loop service cell: kClients submitter threads, each keeping
/// `flight` requests in flight (submit the flight, wait the flight).
/// Batched mode (flight = max_batch = 16): the drain worker finds runs
/// in the queues and groups them. Unbatched mode (flight = max_batch =
/// 1): synchronous clients, every operation crosses the service alone.
Cell run_svc(svc::Backend b, int shards, const workload::Config& cfg,
             int ubits, std::size_t flight, std::size_t max_batch) {
  World w = make_world(cfg.key_space);
  svc::KVStore store(*w.es, store_cfg(b, shards, ubits, max_batch));
  StorePrefill pf{store};
  workload::prefill(pf, cfg);

  std::atomic<bool> start{false}, stop{false};
  std::vector<std::uint64_t> ops_done(kClients, 0);
  std::vector<std::vector<std::uint64_t>> lat(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      workload::KeyGen gen(cfg, splitmix64(cfg.seed + c * 1000003));
      std::vector<svc::Request> flight_reqs(flight);
      auto& l = lat[c];
      l.reserve(1 << 16);
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& r : flight_reqs) {
          roll(&r, gen, cfg);
          store.submit(c, &r);
        }
        for (auto& r : flight_reqs) {
          store.wait(&r);
          l.push_back(now_ns() - r.t_submit_ns);
        }
        ops_done[c] += flight;
      }
    });
  }
  const std::uint64_t t0 = now_ns();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  store.close();
  bench::note_epoch_stats(w.es->stats());

  Cell cell;
  std::vector<std::uint64_t> all;
  std::uint64_t ops = 0;
  for (int c = 0; c < kClients; ++c) {
    ops += ops_done[c];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  cell.mops = secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  cell.p50_us = q_us(all, 0.50);
  cell.p95_us = q_us(all, 0.95);
  cell.p99_us = q_us(all, 0.99);
  return cell;
}

/// Direct-library reference: the same kClients threads call the
/// structure directly — per-op envelope, per-op transaction, no service
/// stack at all.
Cell run_direct(svc::Backend b, const workload::Config& cfg, int ubits) {
  World w = make_world(cfg.key_space);
  svc::ShardOptions opt;
  opt.veb_ubits = ubits;
  auto shard = svc::make_shard(b, *w.es, opt);
  workload::prefill(*shard, cfg);

  std::atomic<bool> start{false}, stop{false};
  std::vector<std::uint64_t> ops_done(kClients, 0);
  std::vector<std::vector<std::uint64_t>> lat(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      workload::KeyGen gen(cfg, splitmix64(cfg.seed + c * 1000003));
      auto& l = lat[c];
      l.reserve(1 << 16);
      svc::Request r;
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        roll(&r, gen, cfg);
        const std::uint64_t t = now_ns();
        switch (r.op.kind) {
          case epoch::BatchOp::Kind::kGet:
            shard->find(r.op.key);
            break;
          case epoch::BatchOp::Kind::kPut:
            shard->insert(r.op.key, r.op.value);
            break;
          case epoch::BatchOp::Kind::kRemove:
            shard->remove(r.op.key);
            break;
        }
        l.push_back(now_ns() - t);
        ops_done[c]++;
      }
    });
  }
  const std::uint64_t t0 = now_ns();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  bench::note_epoch_stats(w.es->stats());

  Cell cell;
  std::vector<std::uint64_t> all;
  std::uint64_t ops = 0;
  for (int c = 0; c < kClients; ++c) {
    ops += ops_done[c];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  cell.mops = secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  cell.p50_us = q_us(all, 0.50);
  cell.p95_us = q_us(all, 0.95);
  cell.p99_us = q_us(all, 0.99);
  return cell;
}

/// Open-loop overload: tiny queues, submitters that never wait (each
/// keeps a pool of requests and re-fills whichever have resolved), so
/// offered load outruns the single drain worker and admission control
/// must shed. Shed rate = rejected submissions / all submissions.
Cell run_overload(svc::Backend b, const workload::Config& cfg, int ubits) {
  World w = make_world(cfg.key_space);
  svc::KVStoreConfig scfg = store_cfg(b, /*shards=*/1, ubits, kFlight);
  scfg.queue_capacity = 8;  // shallow: back-pressure bites early
  svc::KVStore store(*w.es, scfg);
  StorePrefill pf{store};
  workload::prefill(pf, cfg);

  std::atomic<bool> start{false}, stop{false};
  std::vector<std::uint64_t> submitted(kClients, 0), shed(kClients, 0),
      served(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  constexpr std::size_t kPool = 64;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      workload::KeyGen gen(cfg, splitmix64(cfg.seed + c * 7777));
      std::vector<svc::Request> pool(kPool);
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& r : pool) {
          if (r.state.load(std::memory_order_acquire) ==
              svc::Request::kQueued) {
            continue;  // still in flight; offer elsewhere
          }
          if (r.state.load(std::memory_order_relaxed) ==
              svc::Request::kDone) {
            if (r.status != svc::Status::kRejected) served[c]++;
          }
          roll(&r, gen, cfg);
          submitted[c]++;
          if (!store.submit(c, &r)) shed[c]++;
        }
        // Open-loop pacing: hand the core over once per sweep so the
        // drain worker is not starved into a 100% shed tarpit.
        std::this_thread::yield();
      }
      // Drain: every request must resolve before the pool dies.
      for (auto& r : pool) {
        if (r.state.load(std::memory_order_acquire) ==
            svc::Request::kQueued) {
          store.wait(&r);
        }
      }
    });
  }
  const std::uint64_t t0 = now_ns();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  store.close();
  bench::note_epoch_stats(w.es->stats());

  std::uint64_t sub = 0, rej = 0, ok = 0;
  for (int c = 0; c < kClients; ++c) {
    sub += submitted[c];
    rej += shed[c];
    ok += served[c];
  }
  Cell cell;
  cell.shed_pct = sub > 0 ? 100.0 * static_cast<double>(rej) /
                                static_cast<double>(sub)
                          : 0;
  cell.mops = secs > 0 ? static_cast<double>(ok) / secs / 1e6 : 0;
  return cell;
}

void record_latency(const char* table, const char* label, const Cell& c) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s p50", label);
  bench::record_row(table, buf, kClients, c.p50_us, "us");
  std::snprintf(buf, sizeof buf, "%s p95", label);
  bench::record_row(table, buf, kClients, c.p95_us, "us");
  std::snprintf(buf, sizeof buf, "%s p99", label);
  bench::record_row(table, buf, kClients, c.p99_us, "us");
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig10_service", argc, argv);
  bench::set_structure("bd-spash");
  bench::set_structure("phtm-veb");
  bench::set_structure("bdl-skiplist");
  const int ubits = bench::universe_bits(16);
  const std::uint64_t keys = std::uint64_t{1} << ubits;
  bench::print_header(
      "Fig. 10: service layer — direct vs unbatched vs batched KVStore "
      "(Mops/s), 8 clients",
      "YCSB-A Zipfian 0.99 unless noted; batched: flight=max_batch=16; "
      "latency rows in us; overload cell reports shed %");

  const workload::Config ycsb_a =
      workload::Config::ycsb_a().with(keys, 0.99, kClients,
                                      bench::bench_ms());

  const struct {
    svc::Backend b;
    const char* name;
  } backends[] = {
      {svc::Backend::kHash, "bd-spash"},
      {svc::Backend::kVebTree, "phtm-veb"},
      {svc::Backend::kSkiplist, "bdl-skiplist"},
  };

  for (const auto& [b, name] : backends) {
    char table[96], lat_table[96];
    std::snprintf(table, sizeof table, "%s, YCSB-A", name);
    std::snprintf(lat_table, sizeof lat_table, "%s, YCSB-A latency", name);
    std::printf("\n%s (Mops/s at %d clients)\n", table, kClients);

    const Cell direct = run_direct(b, ycsb_a, ubits);
    bench::record_row(table, "direct", kClients, direct.mops, "Mops");
    record_latency(lat_table, "direct", direct);
    std::printf("  %-18s %8.3f  (p99 %.1f us)\n", "direct", direct.mops,
                direct.p99_us);
    const Cell base = run_svc(b, 1, ycsb_a, ubits, /*flight=*/1,
                              /*max_batch=*/1);
    bench::record_row(table, "unbatched", kClients, base.mops, "Mops");
    record_latency(lat_table, "unbatched", base);
    std::printf("  %-18s %8.3f  (p99 %.1f us)\n", "unbatched", base.mops,
                base.p99_us);
    for (int shards : {1, 2, 4}) {
      const Cell cell = run_svc(b, shards, ycsb_a, ubits, kFlight, kFlight);
      char label[32];
      std::snprintf(label, sizeof label, "batched s=%d", shards);
      bench::record_row(table, label, kClients, cell.mops, "Mops");
      record_latency(lat_table, label, cell);
      std::printf("  %-18s %8.3f  (p99 %.1f us, %.2fx unbatched)\n", label,
                  cell.mops, cell.p99_us,
                  base.mops > 0 ? cell.mops / base.mops : 0.0);
      std::fflush(stdout);
    }
  }

  // Mix sweep on the hash backend (B and C shift toward reads, shrinking
  // the amortizable write work per batch).
  std::printf("\nbd-spash mix sweep (Mops/s, batched s=1 vs unbatched)\n");
  const struct {
    const char* name;
    workload::Config cfg;
  } mixes[] = {
      {"YCSB-B", workload::Config::ycsb_b().with(keys, 0.99, kClients,
                                                 bench::bench_ms())},
      {"YCSB-C", workload::Config::ycsb_c().with(keys, 0.99, kClients,
                                                 bench::bench_ms())},
  };
  for (const auto& [mix_name, mix_cfg] : mixes) {
    char table[96];
    std::snprintf(table, sizeof table, "bd-spash, %s", mix_name);
    const Cell base = run_svc(svc::Backend::kHash, 1, mix_cfg, ubits, 1, 1);
    const Cell cell = run_svc(svc::Backend::kHash, 1, mix_cfg, ubits,
                              kFlight, kFlight);
    bench::record_row(table, "unbatched", kClients, base.mops, "Mops");
    bench::record_row(table, "batched s=1", kClients, cell.mops, "Mops");
    std::printf("  %-8s unbatched %8.3f   batched %8.3f\n", mix_name,
                base.mops, cell.mops);
  }

  // Overload / admission control.
  const Cell over = run_overload(svc::Backend::kHash, ycsb_a, ubits);
  bench::record_row("admission control", "shed_rate", kClients,
                    over.shed_pct, "%");
  bench::record_row("admission control", "goodput", kClients, over.mops,
                    "Mops");
  std::printf("\nadmission control (open loop, queue=8): shed %.1f%%, "
              "goodput %.3f Mops/s\n",
              over.shed_pct, over.mops);

  return bench::finish();
}
