
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/pallocator.cpp" "src/CMakeFiles/bdhtm.dir/alloc/pallocator.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/alloc/pallocator.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/CMakeFiles/bdhtm.dir/common/env.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/common/env.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/bdhtm.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/spin.cpp" "src/CMakeFiles/bdhtm.dir/common/spin.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/common/spin.cpp.o.d"
  "/root/repo/src/common/threading.cpp" "src/CMakeFiles/bdhtm.dir/common/threading.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/common/threading.cpp.o.d"
  "/root/repo/src/epoch/epoch_sys.cpp" "src/CMakeFiles/bdhtm.dir/epoch/epoch_sys.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/epoch/epoch_sys.cpp.o.d"
  "/root/repo/src/hash/bd_spash.cpp" "src/CMakeFiles/bdhtm.dir/hash/bd_spash.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/hash/bd_spash.cpp.o.d"
  "/root/repo/src/hash/cceh.cpp" "src/CMakeFiles/bdhtm.dir/hash/cceh.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/hash/cceh.cpp.o.d"
  "/root/repo/src/hash/plush.cpp" "src/CMakeFiles/bdhtm.dir/hash/plush.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/hash/plush.cpp.o.d"
  "/root/repo/src/hash/spash.cpp" "src/CMakeFiles/bdhtm.dir/hash/spash.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/hash/spash.cpp.o.d"
  "/root/repo/src/htm/engine.cpp" "src/CMakeFiles/bdhtm.dir/htm/engine.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/htm/engine.cpp.o.d"
  "/root/repo/src/nvm/device.cpp" "src/CMakeFiles/bdhtm.dir/nvm/device.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/nvm/device.cpp.o.d"
  "/root/repo/src/skiplist/bdl_skiplist.cpp" "src/CMakeFiles/bdhtm.dir/skiplist/bdl_skiplist.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/skiplist/bdl_skiplist.cpp.o.d"
  "/root/repo/src/skiplist/skiplists.cpp" "src/CMakeFiles/bdhtm.dir/skiplist/skiplists.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/skiplist/skiplists.cpp.o.d"
  "/root/repo/src/sync/htm_mwcas.cpp" "src/CMakeFiles/bdhtm.dir/sync/htm_mwcas.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/sync/htm_mwcas.cpp.o.d"
  "/root/repo/src/sync/mwcas.cpp" "src/CMakeFiles/bdhtm.dir/sync/mwcas.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/sync/mwcas.cpp.o.d"
  "/root/repo/src/sync/pmwcas.cpp" "src/CMakeFiles/bdhtm.dir/sync/pmwcas.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/sync/pmwcas.cpp.o.d"
  "/root/repo/src/sync/rdcss.cpp" "src/CMakeFiles/bdhtm.dir/sync/rdcss.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/sync/rdcss.cpp.o.d"
  "/root/repo/src/trees/abtree.cpp" "src/CMakeFiles/bdhtm.dir/trees/abtree.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/trees/abtree.cpp.o.d"
  "/root/repo/src/trees/lbtree.cpp" "src/CMakeFiles/bdhtm.dir/trees/lbtree.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/trees/lbtree.cpp.o.d"
  "/root/repo/src/veb/htm_veb.cpp" "src/CMakeFiles/bdhtm.dir/veb/htm_veb.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/veb/htm_veb.cpp.o.d"
  "/root/repo/src/veb/phtm_veb.cpp" "src/CMakeFiles/bdhtm.dir/veb/phtm_veb.cpp.o" "gcc" "src/CMakeFiles/bdhtm.dir/veb/phtm_veb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
