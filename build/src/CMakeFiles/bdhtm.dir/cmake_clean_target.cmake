file(REMOVE_RECURSE
  "libbdhtm.a"
)
