# Empty dependencies file for bdhtm.
# This may be replaced when dependencies are built.
