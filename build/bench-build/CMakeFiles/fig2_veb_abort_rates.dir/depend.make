# Empty dependencies file for fig2_veb_abort_rates.
# This may be replaced when dependencies are built.
