file(REMOVE_RECURSE
  "../bench/fig2_veb_abort_rates"
  "../bench/fig2_veb_abort_rates.pdb"
  "CMakeFiles/fig2_veb_abort_rates.dir/fig2_veb_abort_rates.cpp.o"
  "CMakeFiles/fig2_veb_abort_rates.dir/fig2_veb_abort_rates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_veb_abort_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
