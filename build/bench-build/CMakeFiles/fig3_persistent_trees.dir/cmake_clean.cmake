file(REMOVE_RECURSE
  "../bench/fig3_persistent_trees"
  "../bench/fig3_persistent_trees.pdb"
  "CMakeFiles/fig3_persistent_trees.dir/fig3_persistent_trees.cpp.o"
  "CMakeFiles/fig3_persistent_trees.dir/fig3_persistent_trees.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_persistent_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
