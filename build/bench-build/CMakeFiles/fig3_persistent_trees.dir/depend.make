# Empty dependencies file for fig3_persistent_trees.
# This may be replaced when dependencies are built.
