file(REMOVE_RECURSE
  "../bench/table3_tree_space"
  "../bench/table3_tree_space.pdb"
  "CMakeFiles/table3_tree_space.dir/table3_tree_space.cpp.o"
  "CMakeFiles/table3_tree_space.dir/table3_tree_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tree_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
