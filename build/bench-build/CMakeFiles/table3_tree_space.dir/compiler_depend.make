# Empty compiler generated dependencies file for table3_tree_space.
# This may be replaced when dependencies are built.
