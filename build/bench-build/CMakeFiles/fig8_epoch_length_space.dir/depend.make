# Empty dependencies file for fig8_epoch_length_space.
# This may be replaced when dependencies are built.
