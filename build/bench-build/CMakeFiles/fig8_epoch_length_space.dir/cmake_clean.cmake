file(REMOVE_RECURSE
  "../bench/fig8_epoch_length_space"
  "../bench/fig8_epoch_length_space.pdb"
  "CMakeFiles/fig8_epoch_length_space.dir/fig8_epoch_length_space.cpp.o"
  "CMakeFiles/fig8_epoch_length_space.dir/fig8_epoch_length_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_epoch_length_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
