file(REMOVE_RECURSE
  "../bench/fig1_veb_persistence_cost"
  "../bench/fig1_veb_persistence_cost.pdb"
  "CMakeFiles/fig1_veb_persistence_cost.dir/fig1_veb_persistence_cost.cpp.o"
  "CMakeFiles/fig1_veb_persistence_cost.dir/fig1_veb_persistence_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_veb_persistence_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
