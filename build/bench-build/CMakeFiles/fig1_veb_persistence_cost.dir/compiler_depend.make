# Empty compiler generated dependencies file for fig1_veb_persistence_cost.
# This may be replaced when dependencies are built.
