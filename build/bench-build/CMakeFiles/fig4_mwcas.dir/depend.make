# Empty dependencies file for fig4_mwcas.
# This may be replaced when dependencies are built.
