file(REMOVE_RECURSE
  "../bench/fig4_mwcas"
  "../bench/fig4_mwcas.pdb"
  "CMakeFiles/fig4_mwcas.dir/fig4_mwcas.cpp.o"
  "CMakeFiles/fig4_mwcas.dir/fig4_mwcas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mwcas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
