file(REMOVE_RECURSE
  "../bench/fig5_skiplist"
  "../bench/fig5_skiplist.pdb"
  "CMakeFiles/fig5_skiplist.dir/fig5_skiplist.cpp.o"
  "CMakeFiles/fig5_skiplist.dir/fig5_skiplist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
