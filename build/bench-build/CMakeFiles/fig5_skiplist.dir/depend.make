# Empty dependencies file for fig5_skiplist.
# This may be replaced when dependencies are built.
