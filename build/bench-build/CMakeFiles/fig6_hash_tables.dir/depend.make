# Empty dependencies file for fig6_hash_tables.
# This may be replaced when dependencies are built.
