file(REMOVE_RECURSE
  "../bench/fig6_hash_tables"
  "../bench/fig6_hash_tables.pdb"
  "CMakeFiles/fig6_hash_tables.dir/fig6_hash_tables.cpp.o"
  "CMakeFiles/fig6_hash_tables.dir/fig6_hash_tables.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hash_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
