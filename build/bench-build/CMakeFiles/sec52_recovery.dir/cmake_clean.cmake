file(REMOVE_RECURSE
  "../bench/sec52_recovery"
  "../bench/sec52_recovery.pdb"
  "CMakeFiles/sec52_recovery.dir/sec52_recovery.cpp.o"
  "CMakeFiles/sec52_recovery.dir/sec52_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
