# Empty dependencies file for fig7_epoch_length_throughput.
# This may be replaced when dependencies are built.
