file(REMOVE_RECURSE
  "../bench/fig7_epoch_length_throughput"
  "../bench/fig7_epoch_length_throughput.pdb"
  "CMakeFiles/fig7_epoch_length_throughput.dir/fig7_epoch_length_throughput.cpp.o"
  "CMakeFiles/fig7_epoch_length_throughput.dir/fig7_epoch_length_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_epoch_length_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
