file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_sys.dir/test_epoch_sys.cpp.o"
  "CMakeFiles/test_epoch_sys.dir/test_epoch_sys.cpp.o.d"
  "test_epoch_sys"
  "test_epoch_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
