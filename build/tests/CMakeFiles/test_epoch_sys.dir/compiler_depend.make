# Empty compiler generated dependencies file for test_epoch_sys.
# This may be replaced when dependencies are built.
