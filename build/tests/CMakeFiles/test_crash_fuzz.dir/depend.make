# Empty dependencies file for test_crash_fuzz.
# This may be replaced when dependencies are built.
