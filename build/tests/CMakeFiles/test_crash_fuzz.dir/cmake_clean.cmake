file(REMOVE_RECURSE
  "CMakeFiles/test_crash_fuzz.dir/test_crash_fuzz.cpp.o"
  "CMakeFiles/test_crash_fuzz.dir/test_crash_fuzz.cpp.o.d"
  "test_crash_fuzz"
  "test_crash_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
