file(REMOVE_RECURSE
  "CMakeFiles/test_mwcas.dir/test_mwcas.cpp.o"
  "CMakeFiles/test_mwcas.dir/test_mwcas.cpp.o.d"
  "test_mwcas"
  "test_mwcas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mwcas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
