# Empty dependencies file for test_mwcas.
# This may be replaced when dependencies are built.
