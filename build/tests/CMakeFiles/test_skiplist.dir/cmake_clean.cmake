file(REMOVE_RECURSE
  "CMakeFiles/test_skiplist.dir/test_skiplist.cpp.o"
  "CMakeFiles/test_skiplist.dir/test_skiplist.cpp.o.d"
  "test_skiplist"
  "test_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
