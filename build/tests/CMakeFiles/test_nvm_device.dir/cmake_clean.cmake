file(REMOVE_RECURSE
  "CMakeFiles/test_nvm_device.dir/test_nvm_device.cpp.o"
  "CMakeFiles/test_nvm_device.dir/test_nvm_device.cpp.o.d"
  "test_nvm_device"
  "test_nvm_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvm_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
