# Empty compiler generated dependencies file for test_nvm_device.
# This may be replaced when dependencies are built.
