file(REMOVE_RECURSE
  "CMakeFiles/test_pallocator.dir/test_pallocator.cpp.o"
  "CMakeFiles/test_pallocator.dir/test_pallocator.cpp.o.d"
  "test_pallocator"
  "test_pallocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pallocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
