# Empty compiler generated dependencies file for test_pallocator.
# This may be replaced when dependencies are built.
