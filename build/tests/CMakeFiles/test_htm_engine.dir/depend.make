# Empty dependencies file for test_htm_engine.
# This may be replaced when dependencies are built.
