file(REMOVE_RECURSE
  "CMakeFiles/test_htm_engine.dir/test_htm_engine.cpp.o"
  "CMakeFiles/test_htm_engine.dir/test_htm_engine.cpp.o.d"
  "test_htm_engine"
  "test_htm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
