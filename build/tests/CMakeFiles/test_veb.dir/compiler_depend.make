# Empty compiler generated dependencies file for test_veb.
# This may be replaced when dependencies are built.
