file(REMOVE_RECURSE
  "CMakeFiles/test_veb.dir/test_veb.cpp.o"
  "CMakeFiles/test_veb.dir/test_veb.cpp.o.d"
  "test_veb"
  "test_veb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_veb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
