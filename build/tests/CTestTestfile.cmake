# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nvm_device "/root/repo/build/tests/test_nvm_device")
set_tests_properties(test_nvm_device PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_htm_engine "/root/repo/build/tests/test_htm_engine")
set_tests_properties(test_htm_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pallocator "/root/repo/build/tests/test_pallocator")
set_tests_properties(test_pallocator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_epoch_sys "/root/repo/build/tests/test_epoch_sys")
set_tests_properties(test_epoch_sys PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mwcas "/root/repo/build/tests/test_mwcas")
set_tests_properties(test_mwcas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_veb "/root/repo/build/tests/test_veb")
set_tests_properties(test_veb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_skiplist "/root/repo/build/tests/test_skiplist")
set_tests_properties(test_skiplist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hash "/root/repo/build/tests/test_hash")
set_tests_properties(test_hash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trees "/root/repo/build/tests/test_trees")
set_tests_properties(test_trees PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ebr "/root/repo/build/tests/test_ebr")
set_tests_properties(test_ebr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_crash_fuzz "/root/repo/build/tests/test_crash_fuzz")
set_tests_properties(test_crash_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
