file(REMOVE_RECURSE
  "CMakeFiles/durability_modes.dir/durability_modes.cpp.o"
  "CMakeFiles/durability_modes.dir/durability_modes.cpp.o.d"
  "durability_modes"
  "durability_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
