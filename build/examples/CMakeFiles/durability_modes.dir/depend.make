# Empty dependencies file for durability_modes.
# This may be replaced when dependencies are built.
