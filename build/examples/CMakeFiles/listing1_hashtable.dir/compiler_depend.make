# Empty compiler generated dependencies file for listing1_hashtable.
# This may be replaced when dependencies are built.
