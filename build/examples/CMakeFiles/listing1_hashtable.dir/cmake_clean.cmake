file(REMOVE_RECURSE
  "CMakeFiles/listing1_hashtable.dir/listing1_hashtable.cpp.o"
  "CMakeFiles/listing1_hashtable.dir/listing1_hashtable.cpp.o.d"
  "listing1_hashtable"
  "listing1_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing1_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
