// Durability spectrum: strict durable linearizability (DL-Skiplist,
// PMwCAS-based) vs buffered durable linearizability (BDL-Skiplist) —
// the paper's central trade-off, measured and demonstrated.
//
// Strict DL persists on the operation's critical path (and cannot use
// HTM); BDL defers write-back to epoch boundaries (and can). The price
// of BDL is a bounded window of recent operations that a crash may drop.
#include <cstdio>

#include "alloc/pallocator.hpp"
#include "common/spin.hpp"
#include "epoch/epoch_sys.hpp"
#include "skiplist/bdl_skiplist.hpp"
#include "skiplist/skiplists.hpp"

using namespace bdhtm;

namespace {

nvm::DeviceConfig modeled_cfg() {
  nvm::DeviceConfig cfg;
  cfg.capacity = 256ull << 20;
  cfg.flush_ns = 500;  // Optane-shaped persist cost
  cfg.fence_ns = 150;
  return cfg;
}

template <typename Map>
double time_inserts(Map& m, std::uint64_t n) {
  const std::uint64_t t0 = now_ns();
  for (std::uint64_t k = 1; k <= n; ++k) m.insert(k, k);
  return (now_ns() - t0) / 1e3 / n;  // us per op
}

}  // namespace

int main() {
  constexpr std::uint64_t kN = 20'000;

  // Strict DL: every insert persists descriptor + links before returning.
  {
    nvm::Device dev(modeled_cfg());
    alloc::PAllocator pa(dev);
    skiplist::DLSkiplist dl(dev, pa);
    const double us = time_inserts(dl, kN);
    std::printf("DL-Skiplist  (strict DL):   %6.2f us/insert, "
                "%llu fences issued\n",
                us,
                static_cast<unsigned long long>(dev.stats().fences.load()));
    // Strict durability: completed ops survive an immediate crash.
    dev.simulate_crash();
    alloc::PAllocator pa2(dev, alloc::PAllocator::Mode::kAttach);
    skiplist::DLSkiplist rec(dev, pa2, skiplist::DLSkiplist::Mode::kAttach);
    rec.recover();
    std::printf("  after crash WITHOUT any flush call: key %llu -> %s\n",
                static_cast<unsigned long long>(kN),
                rec.find(kN) ? "present (strict DL held)" : "LOST");
  }

  // BDL: inserts buffer; the epoch system writes back in the background.
  {
    nvm::Device dev(modeled_cfg());
    alloc::PAllocator pa(dev);
    epoch::EpochSys::Config ecfg;
    ecfg.epoch_length_us = 10'000;
    epoch::EpochSys es(pa, ecfg);
    skiplist::BDLSkiplist bdl(es);
    const double us = time_inserts(bdl, kN);
    std::printf("BDL-Skiplist (buffered):    %6.2f us/insert, "
                "%llu fences issued\n",
                us,
                static_cast<unsigned long long>(dev.stats().fences.load()));
    // The flip side: only epochs <= persisted-2 survive a crash.
    es.persist_all();
    bdl.insert(999'999 & ((1u << 20) - 1), 42);  // post-flush insert
    dev.simulate_crash();
    alloc::PAllocator pa2(dev, alloc::PAllocator::Mode::kAttach);
    epoch::EpochSys::Config rcfg;
    rcfg.attach = true;
    rcfg.start_advancer = false;
    epoch::EpochSys es2(pa2, rcfg);
    skiplist::BDLSkiplist rec(es2);
    rec.recover();
    std::printf("  after crash: persisted prefix intact (key 1 -> %s), "
                "unflushed tail dropped (BDL window)\n",
                rec.find(1) ? "present" : "LOST");
  }
  return 0;
}
