// Listing 1, executable: the paper's BDL-HTM insert strategy spelled out
// against the real API, on a minimal fixed-size hash table.
//
// Walks through the exact steps of paper Listing 1:
//   - beginOp() / preallocation with an invalid epoch (lines 8-12),
//   - the transaction: lock subscription, epoch stamping, the three-way
//     epoch comparison (OldSeeNewException / out-of-place replace /
//     in-place update) (lines 14-37),
//   - abort handling: OldSeeNewException restarts in a new epoch, Locked
//     spins, other causes retry then take the global-lock fallback
//     (lines 38-49),
//   - the op_done epilogue: pRetire/pTrack strictly after the commit
//     (lines 50-55).
#include <cassert>
#include <cstdio>

#include "alloc/pallocator.hpp"
#include "epoch/epoch_sys.hpp"
#include "common/rng.hpp"
#include "epoch/kvpair.hpp"
#include "htm/engine.hpp"
#include "nvm/device.hpp"

using namespace bdhtm;
using epoch::KVPair;

namespace {

constexpr int kBuckets = 256;
constexpr int kBucketSize = 8;
constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

struct SimpleTable {
  // DRAM index; slots point at KVPair blocks in NVM.
  std::uint64_t keys[kBuckets][kBucketSize];
  std::uint64_t blocks[kBuckets][kBucketSize];
};

epoch::EpochSys* esys;
htm::ElidedLock global_lock;
thread_local KVPair* new_blk;
thread_local KVPair* retire_blk;
thread_local KVPair* persist_blk;

void insert(SimpleTable* table, std::uint64_t k, std::uint64_t v) {
  const auto bucket = splitmix64(k) % kBuckets;
retry_regist:
  const std::uint64_t op_epoch = esys->beginOp();          // line 8
  if (new_blk == nullptr) {                                // lines 9-10
    new_blk = epoch::make_kv(*esys, k, v);
  } else {
    epoch::reinit_kv(*esys, new_blk, k, v);                // line 12
  }
  retire_blk = persist_blk = nullptr;

  int attempts = 0;
retry_txn:
  const unsigned status = htm::run([&](htm::Txn& tx) {     // line 14
    global_lock.subscribe(tx, epoch::kLockedException);    // line 16
    epoch::EpochSys::set_epoch_tx(tx, esys->device(), new_blk,
                                  op_epoch);               // line 17
    KVPair* found = nullptr;
    int free_slot = -1;
    for (int i = 0; i < kBucketSize; ++i) {                // line 19
      const std::uint64_t key_i = tx.load(&table->keys[bucket][i]);
      if (key_i == k) {
        found = reinterpret_cast<KVPair*>(
            tx.load(&table->blocks[bucket][i]));
      } else if (key_i == kEmpty && free_slot < 0) {
        free_slot = i;
      }
      if (found != nullptr) {
        const std::uint64_t e =
            epoch::EpochSys::get_epoch_tx(tx, found);      // line 21
        if (e > op_epoch) {
          tx.abort(epoch::kOldSeeNewException);            // line 23
        } else if (e < op_epoch) {                         // lines 24-28
          retire_blk = found;
          tx.store(&table->blocks[bucket][i],
                   reinterpret_cast<std::uint64_t>(new_blk));
          persist_blk = new_blk;
        } else {                                           // line 29
          tx.store_nvm(esys->device(), &found->value, v);
          persist_blk = found;
        }
        return;                                            // lines 30-31
      }
    }
    assert(free_slot >= 0 && "demo table never fills");
    tx.store(&table->blocks[bucket][free_slot],
             reinterpret_cast<std::uint64_t>(new_blk));    // line 34
    tx.store(&table->keys[bucket][free_slot], k);
    persist_blk = new_blk;
  });

  if (status != htm::kCommitted) {                         // lines 38-49
    if ((status & htm::kAbortExplicit) &&
        htm::explicit_code(status) == epoch::kOldSeeNewException) {
      esys->abortOp();                                     // line 40
      goto retry_regist;                                   // line 41
    }
    if ((status & htm::kAbortExplicit) &&
        htm::explicit_code(status) == epoch::kLockedException) {
      global_lock.wait_until_free();                       // line 43
      goto retry_txn;                                      // line 44
    }
    if (++attempts < 8) goto retry_txn;
    // Fallback path (line 46-48) omitted in the demo: single writer.
    goto retry_txn;
  }

  // op_done (lines 50-55)
  if (persist_blk == new_blk) new_blk = nullptr;
  if (retire_blk != nullptr) esys->pRetire(retire_blk);    // line 51
  if (persist_blk != nullptr) esys->pTrack(persist_blk);   // line 52
  retire_blk = nullptr;                                    // line 53
  persist_blk = nullptr;                                   // line 54
  esys->endOp();                                           // line 55
}

}  // namespace

int main() {
  nvm::DeviceConfig dcfg;
  dcfg.capacity = 64ull << 20;
  nvm::Device dev(dcfg);
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.start_advancer = false;  // advance epochs by hand for the demo
  epoch::EpochSys es(pa, ecfg);
  esys = &es;

  auto table = std::make_unique<SimpleTable>();
  for (auto& b : table->keys) {
    for (auto& s : b) s = kEmpty;
  }

  insert(table.get(), 17, 1700);
  std::printf("inserted (17, 1700) in epoch %llu\n",
              static_cast<unsigned long long>(es.current_epoch()));

  insert(table.get(), 17, 1701);
  std::printf("same-epoch update: in place (no new NVM block)\n");

  es.advance();
  insert(table.get(), 17, 1702);
  std::printf("newer-epoch update: out-of-place replace; old block "
              "retired, reclaimed two transitions later\n");

  es.persist_all();
  std::printf("persisted: blocks reclaimed so far = %llu\n",
              static_cast<unsigned long long>(
                  es.stats().blocks_reclaimed.load()));
  return 0;
}
