// Ordered persistent index: PHTM-vEB (paper §4.1) as a storage-system
// index with doubly-logarithmic successor queries — the workload the
// paper's introduction motivates (range/successor queries over a
// buffered-durable store).
//
// Demonstrates: insert/lookup, ordered iteration via successor(), the
// buffered-durability window (an unflushed suffix is dropped on crash,
// a remove whose epoch never persisted "un-happens"), and multi-threaded
// recovery.
#include <cstdio>

#include "alloc/pallocator.hpp"
#include "epoch/epoch_sys.hpp"
#include "nvm/device.hpp"
#include "veb/phtm_veb.hpp"

using namespace bdhtm;

int main() {
  nvm::DeviceConfig dcfg;
  dcfg.capacity = 256ull << 20;
  nvm::Device dev(dcfg);
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.start_advancer = false;  // manual epochs: deterministic demo
  epoch::EpochSys es(pa, ecfg);

  constexpr int kUniverseBits = 16;
  veb::PHTMvEB index(es, kUniverseBits);

  // A batch of "orders" keyed by timestamp-ish ids.
  for (std::uint64_t id = 100; id < 200; id += 10) index.insert(id, id * 7);
  es.persist_all();  // batch durable

  // Ordered scan: iterate ids in [100, 200) via successor().
  std::printf("ordered scan:");
  std::uint64_t pos = 99;
  while (auto s = index.successor(pos)) {
    std::printf(" %llu", static_cast<unsigned long long>(s->first));
    pos = s->first;
  }
  std::printf("\n");

  // Work in the current (not-yet-durable) epochs.
  index.insert(500, 1);   // will be lost (never persisted)
  index.remove(150);      // will "un-happen" (BDL rule 2)
  std::printf("before crash: 500 present=%d, 150 present=%d\n",
              index.find(500).has_value(), index.find(150).has_value());

  dev.simulate_crash();
  alloc::PAllocator pa2(dev, alloc::PAllocator::Mode::kAttach);
  epoch::EpochSys::Config rcfg;
  rcfg.attach = true;
  rcfg.start_advancer = false;
  epoch::EpochSys es2(pa2, rcfg);
  veb::PHTMvEB recovered(es2, kUniverseBits);
  const std::size_t n = recovered.recover(/*threads=*/2);

  std::printf("after recovery (%zu blocks): 500 present=%d, "
              "150 present=%d (remove un-happened), find(170)=%llu\n",
              n, recovered.find(500).has_value(),
              recovered.find(150).has_value(),
              static_cast<unsigned long long>(*recovered.find(170)));

  // The recovered index answers ordered queries again.
  auto s = recovered.successor(150);
  std::printf("successor(150) = %llu\n",
              static_cast<unsigned long long>(s->first));
  return 0;
}
