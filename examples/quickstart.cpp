// Quickstart: a buffered-durable key-value store in ~40 lines.
//
// Builds a BD-Spash hash table (paper §4.3) on a simulated NVM device,
// writes some pairs, persists through the epoch system, simulates a
// power failure, and recovers.
//
//   $ ./quickstart
#include <cstdio>

#include "alloc/pallocator.hpp"
#include "epoch/epoch_sys.hpp"
#include "hash/bd_spash.hpp"
#include "nvm/device.hpp"

using namespace bdhtm;

int main() {
  // 1. An NVM "device": working image + crash-survivable media image.
  nvm::DeviceConfig dcfg;
  dcfg.capacity = 256ull << 20;
  nvm::Device dev(dcfg);

  // 2. Persistent allocator and the epoch system (50 ms epochs by
  //    default; every write becomes durable within two epochs).
  alloc::PAllocator pa(dev);
  epoch::EpochSys::Config ecfg;
  ecfg.epoch_length_us = 10'000;
  epoch::EpochSys es(pa, ecfg);

  // 3. The hash table: HTM-synchronized, DRAM index, NVM blocks.
  hash::BDSpash kv(es);
  for (std::uint64_t k = 1; k <= 1000; ++k) kv.insert(k, k * 100);
  std::printf("inserted 1000 pairs; get(42) = %llu\n",
              static_cast<unsigned long long>(*kv.find(42)));

  // 4. Make everything durable, then pull the plug.
  es.persist_all();
  kv.insert(2000, 7);  // written after the last flush: may not survive
  dev.simulate_crash();
  std::printf("crash!\n");

  // 5. Recover: re-attach the allocator and epoch system, rebuild.
  alloc::PAllocator pa2(dev, alloc::PAllocator::Mode::kAttach);
  epoch::EpochSys::Config rcfg;
  rcfg.attach = true;
  rcfg.start_advancer = false;
  epoch::EpochSys es2(pa2, rcfg);
  hash::BDSpash recovered(es2);
  const std::size_t live = recovered.recover();

  std::printf("recovered %zu pairs; get(42) = %llu; get(2000) %s\n", live,
              static_cast<unsigned long long>(*recovered.find(42)),
              recovered.find(2000) ? "SURVIVED (epoch got flushed in time)"
                                   : "dropped (tail of the last epochs)");
  return 0;
}
